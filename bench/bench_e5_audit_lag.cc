// E5 — Audit lag under diurnal load (paper Section 3.4).
//
// Claim: "Assuming that read requests show daily peak patterns (few
// requests at 3AM in the night for example), it is possible that the
// auditor will seriously lag behind during peak hours, but catch up during
// the night. However, it is essential that in the long run the auditor is
// able to keep up... If the auditor is over-used, the solution is to
// either add extra auditors, or weaken the security guarantees by
// verifying only a randomly chosen fraction of all reads."
//
// We run 48 virtual hours of diurnally-shaped open-loop read traffic and
// sample the auditor's backlog every 30 virtual minutes, for three
// provisionings: adequate, undersized, and undersized-with-sampling.
#include "bench/bench_util.h"
#include "src/core/cluster.h"

namespace sdr {
namespace {

struct Series {
  std::vector<double> hours;
  std::vector<double> load;
  std::vector<double> backlog;
  uint64_t received = 0;
  uint64_t audited = 0;
  uint64_t deduped = 0;
  uint64_t memo_hits = 0;
  uint64_t memo_misses = 0;
  size_t final_backlog = 0;
};

Series Run(double auditor_speed, double sample_fraction, bool use_cache,
           uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 2;
  config.corpus.n_items = 100;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.0;
  config.params.audit_sample_fraction = sample_fraction;
  config.cost.auditor_speed = auditor_speed;
  config.auditor_use_cache = use_cache;
  // Queries cost ~60ms of slave time on average under this mix; the
  // auditor's *relative* speed is the sweep variable: at 0.15x its mean
  // audit takes ~0.4s, putting it over capacity at the daytime peak
  // (utilization ~1.2) but under it on the daily average (~0.65) — it must
  // use the night to catch up. At 0.075x even the daily average exceeds
  // capacity and the backlog diverges.
  config.cost.work_unit_us = 1000.0;
  config.mix.get_weight = 0.4;
  config.mix.scan_weight = 0.2;
  config.mix.grep_weight = 0.25;
  config.mix.agg_weight = 0.15;
  config.client_mode = Client::LoadMode::kOpenLoop;
  config.client_reads_per_second = 1.5;
  DiurnalShape shape;
  config.client_rate_multiplier = [shape](SimTime t) {
    return shape.Multiplier(t);
  };
  config.track_ground_truth = false;

  Cluster cluster(config);
  Series s;
  DiurnalShape probe;
  const SimTime kTotal = 48 * kHour;
  const SimTime kSample = 30 * kMinute;
  for (SimTime t = 0; t < kTotal; t += kSample) {
    cluster.RunFor(kSample);
    s.hours.push_back(static_cast<double>(cluster.sim().Now()) / kHour);
    s.load.push_back(probe.Multiplier(cluster.sim().Now()));
    s.backlog.push_back(static_cast<double>(cluster.auditor().backlog()));
  }
  s.received = cluster.auditor().metrics().pledges_received;
  s.audited = cluster.auditor().metrics().pledges_audited;
  s.deduped = cluster.auditor().metrics().pledges_deduped;
  s.memo_hits = cluster.auditor().metrics().reexec_memo_hits;
  s.memo_misses = cluster.auditor().metrics().reexec_memo_misses;
  s.final_backlog = cluster.auditor().backlog();
  return s;
}

void ReportSeries(const char* bench_name, const Series& s) {
  double peak = 0;
  double sum = 0;
  for (double b : s.backlog) {
    peak = std::max(peak, b);
    sum += b;
  }
  double mean =
      s.backlog.empty() ? 0 : sum / static_cast<double>(s.backlog.size());
  // real_time = virtual seconds simulated; the series' health lives in the
  // backlog counters (an over-used auditor shows up as final ~ peak).
  double virtual_s = s.hours.empty() ? 0 : s.hours.back() * 3600.0;
  ReportBenchmark(std::string("E5_audit_lag/") + bench_name,
                  static_cast<int64_t>(s.backlog.size()), virtual_s,
                  virtual_s, "s",
                  {{"pledges_received", static_cast<double>(s.received)},
                   {"pledges_audited", static_cast<double>(s.audited)},
                   {"pledges_deduped", static_cast<double>(s.deduped)},
                   {"reexec_memo_hits", static_cast<double>(s.memo_hits)},
                   {"reexec_memo_misses", static_cast<double>(s.memo_misses)},
                   {"backlog_peak", peak},
                   {"backlog_mean", mean},
                   {"backlog_final", static_cast<double>(s.final_backlog)}});
}

void PrintSeries(const char* name, const Series& s) {
  Row("\n  [%s] pledges received=%llu audited=%llu final backlog=%zu", name,
      static_cast<unsigned long long>(s.received),
      static_cast<unsigned long long>(s.audited), s.final_backlog);
  Row("  %6s %6s %9s  %s", "hour", "load", "backlog", "");
  double max_backlog = 1;
  for (double b : s.backlog) {
    max_backlog = std::max(max_backlog, b);
  }
  for (size_t i = 0; i < s.hours.size(); i += 4) {  // print every 2 hours
    int bar = static_cast<int>(s.backlog[i] / max_backlog * 40);
    std::string bars(static_cast<size_t>(bar), '#');
    Row("  %6.1f %6.2f %9.0f  %s", s.hours[i], s.load[i], s.backlog[i],
        bars.c_str());
  }
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  int jobs = sdr::ParseJobsFlag(argc, argv);
  using namespace sdr;
  PrintHeader("E5: auditor backlog under diurnal load, 48 virtual hours");
  Note("open-loop clients, raised-cosine diurnal curve with 3AM trough");

  // The four provisionings are independent simulations: compute them on
  // worker threads, then print in the fixed order below.
  struct Case {
    const char* bench_name;
    const char* label;
    double speed;
    double sample;
    bool cache;
  };
  const Case cases[] = {
      {"cached", "auditor with result cache (Section 3.4's optimization)",
       0.15, 1.0, true},
      {"no_cache", "no cache: lags at the daytime peak, catches up at night",
       0.15, 1.0, false},
      {"no_cache_half_speed",
       "no cache, half speed: over-used, diverges across days", 0.075, 1.0,
       false},
      {"no_cache_half_speed_sampling",
       "no cache, half speed + 35% sampling (the paper's fallback)", 0.075,
       0.35, false},
  };
  Series series[4];
  RunIndexedParallel(4, jobs, [&](int i) {
    series[i] = Run(cases[i].speed, cases[i].sample, cases[i].cache, 31);
  });
  for (int i = 0; i < 4; ++i) {
    PrintSeries(cases[i].label, series[i]);
    ReportSeries(cases[i].bench_name, series[i]);
  }

  Note("shape: the cached auditor keeps up trivially; without the cache the");
  Note("backlog swells at daytime peak and drains overnight; an over-used");
  Note("auditor diverges day over day; sampling restores stability at");
  Note("reduced coverage.");
  return 0;
}
