// E10 — Cost-asymmetry microbenchmarks (real CPU time, google-benchmark).
//
// Paper claim (Section 3.4): the auditor outruns slaves because it skips
// the per-read signature and reply; signing dominates hashing by orders of
// magnitude. These microbenchmarks measure the real costs of every
// primitive on the read path and thereby ground the CostModel constants
// used by the virtual-time experiments.
#include <benchmark/benchmark.h>

#include "src/core/pledge.h"
#include "src/crypto/ed25519.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha2.h"
#include "src/merkle/merkle_tree.h"
#include "src/store/executor.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

namespace sdr {
namespace {

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha256(benchmark::State& state) {
  Rng rng(2);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha512(benchmark::State& state) {
  Rng rng(3);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(4);
  Bytes key = rng.NextBytes(32);
  Bytes data = rng.NextBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_Ed25519KeyGen(benchmark::State& state) {
  Rng rng(5);
  Bytes seed = rng.NextBytes(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519PublicKey(seed));
  }
}
BENCHMARK(BM_Ed25519KeyGen);

void BM_Ed25519Sign(benchmark::State& state) {
  Rng rng(6);
  Bytes seed = rng.NextBytes(32);
  Bytes msg = rng.NextBytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Sign(seed, msg));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  Rng rng(7);
  Bytes seed = rng.NextBytes(32);
  Bytes pub = Ed25519PublicKey(seed);
  Bytes msg = rng.NextBytes(256);
  Bytes sig = Ed25519Sign(seed, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Verify(pub, msg, sig));
  }
}
BENCHMARK(BM_Ed25519Verify);

// The slave's per-read crypto (hash result + sign pledge) vs the auditor's
// (hash only) — the core asymmetry.
void BM_SlavePerReadCrypto(benchmark::State& state) {
  Rng rng(8);
  KeyPair kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer signer(kp);
  KeyPair master_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer master(master_kp);
  VersionToken token = MakeVersionToken(master, 2, 5, 1000);
  Bytes result = rng.NextBytes(1024);
  Query query = Query::Get("item/00001");
  for (auto _ : state) {
    Bytes digest = Sha1::Hash(result);
    benchmark::DoNotOptimize(MakePledge(signer, 9, query, digest, token));
  }
}
BENCHMARK(BM_SlavePerReadCrypto);

void BM_AuditorPerReadCrypto(benchmark::State& state) {
  Rng rng(9);
  Bytes result = rng.NextBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(result));
  }
}
BENCHMARK(BM_AuditorPerReadCrypto);

void BM_ClientVerifyRead(benchmark::State& state) {
  // Client-side acceptance cost: hash + pledge sig + token sig.
  Rng rng(10);
  KeyPair slave_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  KeyPair master_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer slave(slave_kp);
  Signer master(master_kp);
  VersionToken token = MakeVersionToken(master, 2, 5, 1000);
  Bytes result = rng.NextBytes(1024);
  Bytes digest = Sha1::Hash(result);
  Pledge pledge = MakePledge(slave, 9, Query::Get("k"), digest, token);
  for (auto _ : state) {
    bool ok = Sha1::Hash(result) == pledge.result_sha1 &&
              VerifyPledgeSignature(SignatureScheme::kEd25519,
                                    slave_kp.public_key, pledge) &&
              VerifyVersionToken(SignatureScheme::kEd25519,
                                 master_kp.public_key, pledge.token);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ClientVerifyRead);

// Query execution by cost class, on a 1000-item catalogue.
class ExecFixture : public benchmark::Fixture {
 public:
  void SetUp(const ::benchmark::State&) override {
    if (store.size() == 0) {
      Rng rng(11);
      CorpusConfig config;
      config.n_items = 1000;
      store = BuildCatalogCorpus(config, rng);
    }
  }
  DocumentStore store;
  QueryExecutor exec;
};

BENCHMARK_F(ExecFixture, QueryGet)(benchmark::State& state) {
  Query q = Query::Get(ItemKey(500));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(store, q));
  }
}

BENCHMARK_F(ExecFixture, QueryScan100)(benchmark::State& state) {
  Query q = Query::Scan(ItemKey(100), ItemKey(200));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(store, q));
  }
}

BENCHMARK_F(ExecFixture, QueryGrepAll)(benchmark::State& state) {
  Query q = Query::Grep("widget", "item/", "item0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(store, q));
  }
}

BENCHMARK_F(ExecFixture, QuerySumAll)(benchmark::State& state) {
  Query q = Query::Aggregate(QueryKind::kSum, "price/", "price0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(store, q));
  }
}

void BM_MerkleBuild(benchmark::State& state) {
  Rng rng(12);
  CorpusConfig config;
  config.n_items = static_cast<size_t>(state.range(0));
  DocumentStore store = BuildCatalogCorpus(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::Build(store));
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(100)->Arg(1000);

void BM_MerkleProveVerify(benchmark::State& state) {
  Rng rng(13);
  CorpusConfig config;
  config.n_items = 1000;
  DocumentStore store = BuildCatalogCorpus(config, rng);
  MerkleTree tree = MerkleTree::Build(store);
  for (auto _ : state) {
    auto proof = tree.Prove(ItemKey(123));
    benchmark::DoNotOptimize(MerkleTree::VerifyProof(*proof, tree.root()));
  }
}
BENCHMARK(BM_MerkleProveVerify);

}  // namespace
}  // namespace sdr

BENCHMARK_MAIN();
