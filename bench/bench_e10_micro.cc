// E10 — Cost-asymmetry microbenchmarks (real CPU time, google-benchmark).
//
// Paper claim (Section 3.4): the auditor outruns slaves because it skips
// the per-read signature and reply; signing dominates hashing by orders of
// magnitude. These microbenchmarks measure the real costs of every
// primitive on the read path and thereby ground the CostModel constants
// used by the virtual-time experiments.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/core/pledge.h"
#include "src/crypto/ed25519.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha2.h"
#include "src/merkle/merkle_tree.h"
#include "src/store/executor.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

namespace sdr {
namespace {

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha256(benchmark::State& state) {
  Rng rng(2);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha512(benchmark::State& state) {
  Rng rng(3);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(4);
  Bytes key = rng.NextBytes(32);
  Bytes data = rng.NextBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

// Runs the body with the Ed25519 fast path toggled to `fast`, restoring the
// previous setting afterwards. Benchmarks run sequentially, so flipping the
// process-wide flag around one benchmark is safe.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool fast) : saved_(Ed25519FastPathEnabled()) {
    Ed25519SetFastPath(fast);
  }
  ~FastPathGuard() { Ed25519SetFastPath(saved_); }

 private:
  bool saved_;
};

void KeyGenBody(benchmark::State& state, bool fast) {
  FastPathGuard guard(fast);
  Rng rng(5);
  Bytes seed = rng.NextBytes(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519PublicKey(seed));
  }
}
void BM_Ed25519KeyGen(benchmark::State& state) { KeyGenBody(state, true); }
BENCHMARK(BM_Ed25519KeyGen);
void BM_Ed25519KeyGenNaive(benchmark::State& state) {
  KeyGenBody(state, false);
}
BENCHMARK(BM_Ed25519KeyGenNaive);

void SignBody(benchmark::State& state, bool fast) {
  FastPathGuard guard(fast);
  Rng rng(6);
  Bytes seed = rng.NextBytes(32);
  Bytes msg = rng.NextBytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Sign(seed, msg));
  }
}
void BM_Ed25519Sign(benchmark::State& state) { SignBody(state, true); }
BENCHMARK(BM_Ed25519Sign);
void BM_Ed25519SignNaive(benchmark::State& state) { SignBody(state, false); }
BENCHMARK(BM_Ed25519SignNaive);

// Signing with a pre-expanded key (the Signer's steady state): skips the
// per-call SHA-512 seed expansion and public-key scalar multiplication.
void BM_Ed25519SignExpanded(benchmark::State& state) {
  Rng rng(6);
  Bytes seed = rng.NextBytes(32);
  Ed25519ExpandedKey key = Ed25519ExpandKey(seed);
  Bytes msg = rng.NextBytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519SignExpanded(key, msg));
  }
}
BENCHMARK(BM_Ed25519SignExpanded);

void VerifyBody(benchmark::State& state, bool fast) {
  FastPathGuard guard(fast);
  Rng rng(7);
  Bytes seed = rng.NextBytes(32);
  Bytes pub = Ed25519PublicKey(seed);
  Bytes msg = rng.NextBytes(256);
  Bytes sig = Ed25519Sign(seed, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519Verify(pub, msg, sig));
  }
}
void BM_Ed25519Verify(benchmark::State& state) { VerifyBody(state, true); }
BENCHMARK(BM_Ed25519Verify);
void BM_Ed25519VerifyNaive(benchmark::State& state) {
  VerifyBody(state, false);
}
BENCHMARK(BM_Ed25519VerifyNaive);

// Batch verification of N distinct (key, message, signature) triples via
// the random-linear-combination equation. items_per_second is the amortized
// per-signature rate — compare its inverse against BM_Ed25519Verify.
void BM_Ed25519VerifyBatch(benchmark::State& state) {
  Rng rng(14);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Ed25519BatchItem> items(n);
  for (size_t i = 0; i < n; ++i) {
    Bytes seed = rng.NextBytes(32);
    items[i].public_key = Ed25519PublicKey(seed);
    items[i].message = rng.NextBytes(256);
    items[i].signature = Ed25519Sign(seed, items[i].message);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Ed25519VerifyBatch(items));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_Ed25519VerifyBatch)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The auditor's steady state: thousands of pledges carrying the same master
// version token. A warm VerifyCache answers in one SHA-256 + map lookup.
void BM_VerifyCacheHit(benchmark::State& state) {
  Rng rng(15);
  Bytes seed = rng.NextBytes(32);
  Bytes pub = Ed25519PublicKey(seed);
  Bytes msg = rng.NextBytes(256);
  Bytes sig = Ed25519Sign(seed, msg);
  VerifyCache cache;
  cache.Verify(SignatureScheme::kEd25519, pub, msg, sig);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Verify(SignatureScheme::kEd25519, pub, msg, sig));
  }
}
BENCHMARK(BM_VerifyCacheHit);

// The slave's per-read crypto (hash result + sign pledge) vs the auditor's
// (hash only) — the core asymmetry.
void BM_SlavePerReadCrypto(benchmark::State& state) {
  Rng rng(8);
  KeyPair kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer signer(kp);
  KeyPair master_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer master(master_kp);
  VersionToken token = MakeVersionToken(master, 2, 5, 1000);
  Bytes result = rng.NextBytes(1024);
  Query query = Query::Get("item/00001");
  for (auto _ : state) {
    Bytes digest = Sha1::Hash(result);
    benchmark::DoNotOptimize(MakePledge(signer, 9, query, digest, token));
  }
}
BENCHMARK(BM_SlavePerReadCrypto);

void BM_AuditorPerReadCrypto(benchmark::State& state) {
  Rng rng(9);
  Bytes result = rng.NextBytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(result));
  }
}
BENCHMARK(BM_AuditorPerReadCrypto);

void BM_ClientVerifyRead(benchmark::State& state) {
  // Client-side acceptance cost: hash + pledge sig + token sig.
  Rng rng(10);
  KeyPair slave_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  KeyPair master_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer slave(slave_kp);
  Signer master(master_kp);
  VersionToken token = MakeVersionToken(master, 2, 5, 1000);
  Bytes result = rng.NextBytes(1024);
  Bytes digest = Sha1::Hash(result);
  Pledge pledge = MakePledge(slave, 9, Query::Get("k"), digest, token);
  for (auto _ : state) {
    bool ok = Sha1::Hash(result) == pledge.result_sha1 &&
              VerifyPledgeSignature(SignatureScheme::kEd25519,
                                    slave_kp.public_key, pledge) &&
              VerifyVersionToken(SignatureScheme::kEd25519,
                                 master_kp.public_key, pledge.token);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ClientVerifyRead);

// Query execution by cost class, on a 1000-item catalogue.
class ExecFixture : public benchmark::Fixture {
 public:
  void SetUp(const ::benchmark::State&) override {
    if (store.size() == 0) {
      Rng rng(11);
      CorpusConfig config;
      config.n_items = 1000;
      store = BuildCatalogCorpus(config, rng);
    }
  }
  DocumentStore store;
  QueryExecutor exec;
};

BENCHMARK_F(ExecFixture, QueryGet)(benchmark::State& state) {
  Query q = Query::Get(ItemKey(500));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(store, q));
  }
}

BENCHMARK_F(ExecFixture, QueryScan100)(benchmark::State& state) {
  Query q = Query::Scan(ItemKey(100), ItemKey(200));
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(store, q));
  }
}

BENCHMARK_F(ExecFixture, QueryGrepAll)(benchmark::State& state) {
  Query q = Query::Grep("widget", "item/", "item0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(store, q));
  }
}

BENCHMARK_F(ExecFixture, QuerySumAll)(benchmark::State& state) {
  Query q = Query::Aggregate(QueryKind::kSum, "price/", "price0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.Execute(store, q));
  }
}

void BM_MerkleBuild(benchmark::State& state) {
  Rng rng(12);
  CorpusConfig config;
  config.n_items = static_cast<size_t>(state.range(0));
  DocumentStore store = BuildCatalogCorpus(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree::Build(store));
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(100)->Arg(1000);

void BM_MerkleProveVerify(benchmark::State& state) {
  Rng rng(13);
  CorpusConfig config;
  config.n_items = 1000;
  DocumentStore store = BuildCatalogCorpus(config, rng);
  MerkleTree tree = MerkleTree::Build(store);
  for (auto _ : state) {
    auto proof = tree.Prove(ItemKey(123));
    benchmark::DoNotOptimize(MerkleTree::VerifyProof(*proof, tree.root()));
  }
}
BENCHMARK(BM_MerkleProveVerify);

}  // namespace
}  // namespace sdr

// BENCHMARK_MAIN, except the run also writes google-benchmark's JSON report
// to BENCH_E10.json unless the caller passes its own --benchmark_out.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) {
      has_out = true;
    }
  }
  static char kOut[] = "--benchmark_out=BENCH_E10.json";
  static char kFormat[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(kOut);
    args.push_back(kFormat);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
