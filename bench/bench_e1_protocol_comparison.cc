// E1 — Protocol comparison: this paper's scheme vs state signing vs state
// machine replication (paper Sections 1 and 5).
//
// Claims reproduced (shape, not absolute numbers):
//   - Our scheme serves arbitrary reads from untrusted slaves with ~1x
//     execution work per read plus a small trusted overhead (double-check
//     fraction p + background audit).
//   - State signing serves only point reads from slaves; every dynamic
//     query runs on a trusted master, so trusted-host load explodes as the
//     dynamic fraction of the mix grows.
//   - SMR executes every read (2f+1)x and its latency tracks the slower
//     quorum members.
//
// All three systems run on identical simulated links, the same catalogue,
// and the same query stream.
#include <memory>

#include "bench/bench_util.h"
#include "src/baseline/smr_quorum.h"
#include "src/baseline/state_signing.h"
#include "src/core/cluster.h"

namespace sdr {
namespace {

struct MixSpec {
  const char* name;
  QueryMix mix;
};

// Dynamic fraction = scan + grep + agg weights.
std::vector<MixSpec> Mixes() {
  QueryMix point_heavy;
  point_heavy.get_weight = 0.95;
  point_heavy.scan_weight = 0.00;
  point_heavy.grep_weight = 0.03;
  point_heavy.agg_weight = 0.02;

  QueryMix mixed;
  mixed.get_weight = 0.70;
  mixed.scan_weight = 0.15;
  mixed.grep_weight = 0.10;
  mixed.agg_weight = 0.05;

  QueryMix dynamic_heavy;
  dynamic_heavy.get_weight = 0.30;
  dynamic_heavy.scan_weight = 0.20;
  dynamic_heavy.grep_weight = 0.30;
  dynamic_heavy.agg_weight = 0.20;

  return {{"point-heavy (5% dyn)", point_heavy},
          {"mixed      (30% dyn)", mixed},
          {"dyn-heavy  (70% dyn)", dynamic_heavy}};
}

constexpr SimTime kRunFor = 120 * kSecond;
constexpr SimTime kThink = 50 * kMillisecond;
constexpr size_t kItems = 200;

struct Outcome {
  uint64_t reads = 0;
  double median_ms = 0;
  double p99_ms = 0;
  uint64_t trusted_work = 0;
  uint64_t untrusted_work = 0;
};

Outcome RunOurs(const QueryMix& mix, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 2;
  config.corpus.n_items = kItems;
  config.mix = mix;
  config.params.scheme = SignatureScheme::kHmacSha256;  // host-CPU relief
  config.params.double_check_probability = 0.05;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = kThink;
  config.track_ground_truth = false;
  Cluster cluster(config);
  cluster.RunFor(kRunFor);

  Outcome o;
  Percentiles all;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientMetrics& m = cluster.client(c).metrics();
    o.reads += m.reads_accepted;
  }
  // Merge latency samples via quantiles of the first client (same load).
  o.median_ms = cluster.client(0).metrics().read_latency_us.Median() / 1000.0;
  o.p99_ms = cluster.client(0).metrics().read_latency_us.P99() / 1000.0;
  auto totals = cluster.ComputeTotals();
  o.trusted_work = totals.master_work_units + totals.auditor_work_units;
  o.untrusted_work = totals.slave_work_units;
  return o;
}

Outcome RunStateSigning(const QueryMix& mix, uint64_t seed) {
  Simulator sim(seed);
  Network net(&sim, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0});
  Rng rng(seed);
  KeyPair master_key = KeyPair::Generate(SignatureScheme::kHmacSha256, rng);

  SsMaster::Options mo;
  mo.key_pair = master_key;
  mo.params.scheme = SignatureScheme::kHmacSha256;
  auto master = std::make_unique<SsMaster>(mo);
  net.AddNode(master.get());

  SsSlave::Options so;
  auto slave1 = std::make_unique<SsSlave>(so);
  auto slave2 = std::make_unique<SsSlave>(so);
  net.AddNode(slave1.get());
  net.AddNode(slave2.get());
  master->AddSlave(slave1->id());
  master->AddSlave(slave2->id());

  CorpusConfig corpus;
  corpus.n_items = kItems;
  DocumentStore content = BuildCatalogCorpus(corpus, rng);
  master->SetContent(content);
  MerkleTree tree = MerkleTree::Build(content);
  Signer signer(master_key);
  SignedRoot root = MakeSignedRoot(signer, tree.root(), 0, 0);
  slave1->SetContent(content, root);
  slave2->SetContent(content, root);

  SsClient::Options co;
  co.params.scheme = SignatureScheme::kHmacSha256;
  co.master_public_key = master_key.public_key;
  co.master = master->id();
  auto make_client = [&](NodeId slave_id) {
    SsClient::Options opts = co;
    opts.slave = slave_id;
    return std::make_unique<SsClient>(opts);
  };
  auto client1 = make_client(slave1->id());
  auto client2 = make_client(slave2->id());
  net.AddNode(client1.get());
  net.AddNode(client2.get());
  net.StartAll();

  QueryMix m = mix;
  m.n_items = kItems;
  Rng q1(seed * 31 + 1), q2(seed * 31 + 2);
  // Closed loop per client.
  std::function<void(SsClient*, Rng*)> loop = [&](SsClient* c, Rng* r) {
    c->IssueRead(m.Generate(*r), [&loop, c, r, &sim](bool) {
      sim.ScheduleAfter(kThink, [&loop, c, r] { loop(c, r); });
    });
  };
  loop(client1.get(), &q1);
  loop(client2.get(), &q2);
  sim.RunUntil(kRunFor);

  Outcome o;
  o.reads = client1->reads_accepted() + client2->reads_accepted();
  o.median_ms = client1->latency_us().Median() / 1000.0;
  o.p99_ms = client1->latency_us().P99() / 1000.0;
  o.trusted_work = master->work_units_executed();
  o.untrusted_work =
      slave1->work_units_executed() + slave2->work_units_executed();
  return o;
}

Outcome RunSmr(const QueryMix& mix, int f, uint64_t seed) {
  Simulator sim(seed);
  Network net(&sim, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0});
  Rng rng(seed);
  CorpusConfig corpus;
  corpus.n_items = kItems;
  DocumentStore content = BuildCatalogCorpus(corpus, rng);

  int n = 2 * f + 1;
  std::vector<std::unique_ptr<QrReplica>> replicas;
  QrClient::Options co;
  co.f = f;
  for (int i = 0; i < n; ++i) {
    replicas.push_back(std::make_unique<QrReplica>(QrReplica::Options{}));
    co.replicas.push_back(net.AddNode(replicas.back().get()));
    replicas.back()->SetContent(content);
  }
  auto client1 = std::make_unique<QrClient>(co);
  auto client2 = std::make_unique<QrClient>(co);
  net.AddNode(client1.get());
  net.AddNode(client2.get());
  net.StartAll();

  QueryMix m = mix;
  m.n_items = kItems;
  Rng q1(seed * 37 + 1), q2(seed * 37 + 2);
  std::function<void(QrClient*, Rng*)> loop = [&](QrClient* c, Rng* r) {
    c->IssueRead(m.Generate(*r), [&loop, c, r, &sim](bool, const QueryResult&) {
      sim.ScheduleAfter(kThink, [&loop, c, r] { loop(c, r); });
    });
  };
  loop(client1.get(), &q1);
  loop(client2.get(), &q2);
  sim.RunUntil(kRunFor);

  Outcome o;
  o.reads = client1->reads_accepted() + client2->reads_accepted();
  o.median_ms = client1->latency_us().Median() / 1000.0;
  o.p99_ms = client1->latency_us().P99() / 1000.0;
  o.trusted_work = 0;
  for (const auto& rep : replicas) {
    o.untrusted_work += rep->work_units_executed();
  }
  return o;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  using namespace sdr;
  PrintHeader(
      "E1: protocol comparison (ours vs state signing vs SMR quorum)");
  Note("2 clients, 200-item catalogue, 120 virtual seconds, identical links");
  Note("work = query-executor work units; trusted = masters+auditor");

  Row("%-22s %-18s %8s %9s %9s %10s %12s %8s", "mix", "system", "reads",
      "med ms", "p99 ms", "trustedW", "untrustedW", "W/read");
  for (const auto& spec : Mixes()) {
    struct Entry {
      std::string name;
      Outcome o;
    };
    std::vector<Entry> entries;
    entries.push_back({"ours (p=0.05)", RunOurs(spec.mix, 42)});
    entries.push_back({"state-signing", RunStateSigning(spec.mix, 42)});
    entries.push_back({"smr f=1 (3x)", RunSmr(spec.mix, 1, 42)});
    entries.push_back({"smr f=2 (5x)", RunSmr(spec.mix, 2, 42)});
    entries.push_back({"smr f=3 (7x)", RunSmr(spec.mix, 3, 42)});
    for (const auto& e : entries) {
      double per_read =
          e.o.reads == 0
              ? 0
              : static_cast<double>(e.o.trusted_work + e.o.untrusted_work) /
                    static_cast<double>(e.o.reads);
      Row("%-22s %-18s %8llu %9.2f %9.2f %10llu %12llu %8.1f", spec.name,
          e.name.c_str(), static_cast<unsigned long long>(e.o.reads),
          e.o.median_ms, e.o.p99_ms,
          static_cast<unsigned long long>(e.o.trusted_work),
          static_cast<unsigned long long>(e.o.untrusted_work), per_read);
    }
  }
  Note("expected shape: ours keeps trusted work small at every mix;");
  Note("state-signing's trusted work explodes with the dynamic fraction;");
  Note("smr multiplies untrusted work by 2f+1 and pays quorum latency.");
  return 0;
}
