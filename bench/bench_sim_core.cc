// Simulator-core microbenchmarks: the discrete-event hot path that every
// experiment (E1-E11), chaos sweep, and trace run sits on top of.
//
//   - e4_shape:    events/sec on the simulator-core slice of the E4
//                  workload (same topology and message/timer mix, no
//                  crypto or query compute) — the headline number for the
//                  hot-path rewrite.
//   - e4_events:   events/sec driving the full E4 cluster workload
//                  (lying slave, closed-loop clients, audits + double
//                  checks), where protocol compute shares the bill.
//   - churn:       schedule/cancel/fire interleavings on a bare Simulator,
//                  the pattern produced by protocol timeouts (most timers
//                  are cancelled before they fire).
//   - fanout:      one sender pushing a large payload to many receivers —
//                  prices per-send payload copying.
//   - sweep:       an 8-seed chaos sweep at --jobs worker threads.
//
// Emits BENCH_SIM.json (google-benchmark schema) via --benchmark_out, the
// same contract as bench_e3/bench_e5.
#include <chrono>
#include <cstring>

#include "bench/bench_util.h"
#include "src/chaos/runner.h"
#include "src/core/cluster.h"
#include "src/core/service_queue.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"

namespace sdr {
namespace {

double MeasureRealSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// E4-shaped workload: the same cluster bench_e4 uses for its tracing
// overhead mode — reads, pledge forwarding, audits, double-checks, one
// lying slave. Virtual seconds are fixed, so the event count is
// deterministic; wall time is what the hot path buys down.
void BenchE4Events(int jobs) {
  ClusterConfig config;
  config.seed = 7;
  config.audit_jobs = jobs;  // events and outputs are identical at any value
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 4;
  config.corpus.n_items = 100;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.05;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 5 * kMillisecond;
  config.client_write_fraction = 0.02;
  config.track_ground_truth = false;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 0.01;
    }
    return b;
  };

  const int kReps = 5;
  double best = 1e9;
  size_t events = 0;
  {
    Cluster warm(config);
    warm.RunFor(120 * kSecond);  // warm-up, not measured
  }
  for (int r = 0; r < kReps; ++r) {
    Cluster cluster(config);
    double secs = MeasureRealSeconds([&] { cluster.RunFor(120 * kSecond); });
    events = cluster.sim().events_processed();
    best = std::min(best, secs);
  }
  double events_per_sec = static_cast<double>(events) / best;
  Row("%-34s %12.0f ev/s %10.1f ms (%zu events, best of %d)",
      "E4 workload events/sec", events_per_sec, 1e3 * best, events, kReps);
  ReportBenchmark("sim_core/e4_events", kReps, 1e3 * best, 1e3 * best, "ms",
                  {{"events_per_second", events_per_sec},
                   {"events", static_cast<double>(events)},
                   {"jobs", static_cast<double>(jobs)}});
}

// ---- E4-shaped simulator-core workload (no protocol compute) --------------
//
// The same topology and message/timer mix as the E4 cluster — closed-loop
// clients reading from slaves through a service queue, a per-request
// timeout armed and cancelled, pledge forwards to a batching auditor,
// periodic keep-alive fan-out — with the crypto and query execution
// stripped out. What remains is exactly the layer this rewrite targets:
// event scheduling/cancellation, payload hand-off, link lookup.
namespace shape {

constexpr SimTime kServiceTime = 400 * kMicrosecond;
constexpr SimTime kThinkTime = 2 * kMillisecond;
constexpr SimTime kTimeout = 1 * kSecond;
constexpr size_t kReqBytes = 300;
constexpr size_t kReplyBytes = 900;
constexpr size_t kPledgeBytes = 350;
constexpr size_t kKeepAliveBytes = 120;

class ShapeSlave : public Node {
 public:
  void Start() override { queue_ = std::make_unique<ServiceQueue>(env()); }
  void HandleMessage(NodeId from, const Payload& payload) override {
    if (payload.size() == kKeepAliveBytes) {
      return;  // keep-alive, absorbed
    }
    BytesView body = payload.view().substr(1);
    (void)body;
    queue_->Enqueue(kServiceTime, [this, from] {
      env()->Send(from, Bytes(kReplyBytes, 0x5A));
    });
  }

 private:
  std::unique_ptr<ServiceQueue> queue_;
};

class ShapeAuditor : public Node {
 public:
  void Start() override { queue_ = std::make_unique<ServiceQueue>(env()); }
  void HandleMessage(NodeId, const Payload& payload) override {
    BytesView body = payload.view().substr(1);
    (void)body;
    if (++buffered_ >= 16) {
      buffered_ = 0;
      queue_->Enqueue(8 * kServiceTime, [this] { ++batches_; });
    }
  }

 private:
  std::unique_ptr<ServiceQueue> queue_;
  size_t buffered_ = 0;
  size_t batches_ = 0;
};

class ShapeMaster : public Node {
 public:
  void SetSlaves(std::vector<NodeId> slaves) { slaves_ = std::move(slaves); }
  void Start() override { Tick(); }
  void HandleMessage(NodeId from, const Payload& payload) override {
    // Double-check request: answer immediately (the master's re-execution
    // cost is charged on its own queue in the real protocol; the shape
    // keeps the message pattern only).
    BytesView body = payload.view().substr(1);
    (void)body;
    env()->Send(from, Bytes(kReplyBytes / 2, 0x3C));
  }

 private:
  void Tick() {
    env()->ScheduleAfter(500 * kMillisecond, [this] { Tick(); });
    Payload wire = Bytes(kKeepAliveBytes, 0x11);  // shared fan-out buffer
    for (NodeId s : slaves_) {
      env()->Send(s, wire);
    }
  }
  std::vector<NodeId> slaves_;
};

class ShapeClient : public Node {
 public:
  void Configure(NodeId slave, NodeId master, NodeId auditor) {
    slave_ = slave;
    master_ = master;
    auditor_ = auditor;
  }
  void Start() override { IssueRead(); }
  void HandleMessage(NodeId from, const Payload& payload) override {
    if (from == master_) {
      return;  // double-check reply; nothing further
    }
    env()->Cancel(timeout_);
    timeout_ = 0;
    ++replies_;
    // Forward the pledge to the auditor (fire-and-forget), occasionally
    // double-check with the master — E4's 5%.
    env()->Send(auditor_, payload.Slice(0, kPledgeBytes));
    if (env()->rng().NextBool(0.05)) {
      env()->Send(master_, Bytes(kReqBytes, 0x22));
    }
    env()->ScheduleAfter(kThinkTime, [this] { IssueRead(); });
  }
  size_t replies() const { return replies_; }

 private:
  void IssueRead() {
    Bytes req(kReqBytes, 0x01);
    env()->Send(slave_, std::move(req));
    timeout_ = env()->ScheduleAfter(kTimeout, [this] { IssueRead(); });
  }
  NodeId slave_ = 0, master_ = 0, auditor_ = 0;
  EventId timeout_ = 0;
  size_t replies_ = 0;
};

}  // namespace shape

void BenchE4Shape() {
  const int kReps = 5;
  double best = 1e9;
  size_t events = 0;
  size_t replies = 0;
  for (int r = 0; r < kReps + 1; ++r) {  // first rep is warm-up
    Simulator sim(7);
    Network net(&sim, LinkModel::Lan());
    shape::ShapeMaster master;
    shape::ShapeAuditor auditor;
    shape::ShapeSlave slaves[2];
    shape::ShapeClient clients[4];
    NodeId master_id = net.AddNode(&master);
    NodeId auditor_id = net.AddNode(&auditor);
    NodeId slave_ids[2] = {net.AddNode(&slaves[0]), net.AddNode(&slaves[1])};
    master.SetSlaves({slave_ids[0], slave_ids[1]});
    for (int c = 0; c < 4; ++c) {
      NodeId cid = net.AddNode(&clients[c]);
      (void)cid;
      clients[c].Configure(slave_ids[c % 2], master_id, auditor_id);
    }
    double secs = MeasureRealSeconds([&] {
      net.StartAll();
      sim.RunUntil(60 * kSecond);
    });
    events = sim.events_processed();
    replies = 0;
    for (int c = 0; c < 4; ++c) {
      replies += clients[c].replies();
    }
    if (r > 0) {
      best = std::min(best, secs);
    }
  }
  double events_per_sec = static_cast<double>(events) / best;
  Row("%-34s %12.0f ev/s %10.1f ms (%zu events, %zu replies, best of %d)",
      "E4-shaped core events/sec", events_per_sec, 1e3 * best, events, replies,
      kReps);
  ReportBenchmark("sim_core/e4_shape", kReps, 1e3 * best, 1e3 * best, "ms",
                  {{"events_per_second", events_per_sec},
                   {"events", static_cast<double>(events)},
                   {"replies", static_cast<double>(replies)}});
}

// Timeout-heavy churn: keep a ring of outstanding timers; each iteration
// schedules one far-out timer, cancels the oldest outstanding one, and
// lets near events fire. This is the client/master timeout pattern, where
// nearly every scheduled timeout is cancelled before it fires.
void BenchChurn() {
  const size_t kRing = 4096;
  const size_t kOps = 400000;

  double secs = MeasureRealSeconds([&] {
    Simulator sim(1);
    Rng rng(99);
    std::vector<EventId> ring(kRing, 0);
    size_t fired = 0;
    for (size_t i = 0; i < kOps; ++i) {
      size_t slot = i % kRing;
      if (ring[slot] != 0) {
        sim.Cancel(ring[slot]);
      }
      SimTime delay =
          static_cast<SimTime>(1 + rng.NextBounded(10 * kMillisecond));
      ring[slot] = sim.ScheduleAfter(delay, [&fired] { ++fired; });
      if ((i & 7) == 0) {
        sim.Step();
      }
    }
    sim.RunUntilIdle();
  });
  double ops_per_sec = static_cast<double>(kOps) / secs;
  Row("%-34s %12.0f op/s %10.1f ms (%zu schedule+cancel ops)",
      "schedule/cancel churn", ops_per_sec, 1e3 * secs, kOps);
  ReportBenchmark("sim_core/churn", 1, 1e3 * secs, 1e3 * secs, "ms",
                  {{"ops_per_second", ops_per_sec}});
}

class SinkNode : public Node {
 public:
  void HandleMessage(NodeId, const Payload& payload) override {
    bytes_seen += payload.size();
  }
  size_t bytes_seen = 0;
};

// One sender fanning a 4 KiB payload out to many receivers, repeatedly:
// prices the per-send copy (pre-rewrite) vs the shared refcount bump
// (post-rewrite).
void BenchFanout() {
  const size_t kReceivers = 32;
  const size_t kRounds = 4000;
  const size_t kPayload = 4096;

  double secs = 0;
  size_t delivered = 0;
  {
    Simulator sim(1);
    Network net(&sim, LinkModel::Lan());
    SinkNode sender;
    net.AddNode(&sender);
    std::vector<SinkNode> receivers(kReceivers);
    for (auto& r : receivers) {
      net.AddNode(&r);
    }
    Payload payload = Bytes(kPayload, 0xAB);  // one buffer, shared by refcount
    secs = MeasureRealSeconds([&] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (NodeId to = 2; to <= 1 + kReceivers; ++to) {
          net.Send(1, to, payload);
        }
        sim.RunUntilIdle();
      }
    });
    delivered = net.messages_delivered();
  }
  double msgs_per_sec = static_cast<double>(delivered) / secs;
  Row("%-34s %12.0f msg/s %10.1f ms (%zu msgs x %zu B)", "payload fan-out",
      msgs_per_sec, 1e3 * secs, delivered, kPayload);
  ReportBenchmark("sim_core/fanout", 1, 1e3 * secs, 1e3 * secs, "ms",
                  {{"messages_per_second", msgs_per_sec},
                   {"payload_bytes", static_cast<double>(kPayload)}});
}

// Seed-sweep wall time at the requested --jobs: the scaling number for the
// parallel sweep engine. The report is byte-identical for any jobs value
// (asserted in tests/chaos_test.cc); this prices the wall-clock side.
void BenchSweep(int jobs) {
  ClusterConfig config;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 2;
  config.corpus.n_items = 50;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 20 * kMillisecond;
  config.client_write_fraction = 0.02;

  SweepOptions sweep;
  sweep.first_seed = 1;
  sweep.num_seeds = 8;
  sweep.duration = 20 * kSecond;
  sweep.jobs = jobs;

  Scenario scenario;  // honest baseline: invariants only
  size_t seeds_ok = 0;
  double secs = MeasureRealSeconds([&] {
    SweepReport report = RunSeedSweep(config, scenario, sweep);
    for (const SeedVerdict& v : report.seeds) {
      seeds_ok += v.all_passed() ? 1 : 0;
    }
  });
  double seeds_per_sec = static_cast<double>(sweep.num_seeds) / secs;
  Row("%-34s %12.2f seeds/s %8.1f ms (%d seeds, jobs=%d, %zu passed)",
      "seed-sweep throughput", seeds_per_sec, 1e3 * secs, sweep.num_seeds,
      jobs, seeds_ok);
  ReportBenchmark("sim_core/sweep", sweep.num_seeds, 1e3 * secs, 1e3 * secs,
                  "ms",
                  {{"seeds_per_second", seeds_per_sec},
                   {"jobs", static_cast<double>(jobs)}});
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  int jobs = sdr::ParseJobsFlag(argc, argv);
  using namespace sdr;
  PrintHeader("SIM: simulator-core hot path (event queue, payloads)");
  Note("e4_shape is the simulator-core slice of the E4 workload (no");
  Note("crypto/query compute); e4_events drives the full E4 cluster;");
  Note("churn and fanout isolate the queue and the payload path; sweep");
  Note("runs an 8-seed chaos sweep at --jobs worker threads.");
  BenchE4Shape();
  BenchE4Events(jobs);
  BenchChurn();
  BenchFanout();
  BenchSweep(jobs);
  return 0;
}
