// E11 — Lazy state updates vs Byzantine-tolerant eager ordering
// (paper Section 3, the design-choice ablation DESIGN.md calls out).
//
// Claim: "a total ordering broadcast protocol including the slaves would
// have to be resistant to byzantine failures, and implementing such an
// algorithm over a WAN is extremely expensive. 'Lazy' state updates make
// the write protocol much more efficient."
//
// We measure the per-write cost of the two designs as the slave count
// grows:
//   - LAZY (the paper): sequencer total-order among the small trusted
//     master set, then one signed state-update push per slave — O(m + s)
//     messages, s+1 signatures;
//   - EAGER (BFT): PBFT-style three-phase agreement over masters + slaves
//     — O(n^2) messages, each carrying an authenticator, and commit
//     latency gated by the quorum round trips.
#include <memory>

#include "bench/bench_util.h"
#include "src/broadcast/bft_order.h"
#include "src/core/cluster.h"

namespace sdr {
namespace {

// --- EAGER: a group of BFT members ordering writes. ---

class BftMember : public Node {
 public:
  void Init(BftOrderBroadcast::Config config) {
    bcast_ = std::make_unique<BftOrderBroadcast>(
        env(), this, std::move(config),
        [this](NodeId to, const Bytes& payload) {
          env()->Send(to, payload);
        },
        [this](uint64_t seq, NodeId, const Bytes&) { last_seq_ = seq; });
  }
  void Start() override { bcast_->Start(); }
  void HandleMessage(NodeId from, const Payload& payload) override {
    bcast_->OnMessage(from, payload);
  }
  BftOrderBroadcast& bcast() { return *bcast_; }
  uint64_t last_seq() const { return last_seq_; }

 private:
  std::unique_ptr<BftOrderBroadcast> bcast_;
  uint64_t last_seq_ = 0;
};

struct EagerResult {
  double messages_per_write = 0;
  double auth_ops_per_write = 0;
  double commit_latency_ms = 0;
};

EagerResult RunEager(int n, uint64_t seed) {
  Simulator sim(seed);
  Network net(&sim, LinkModel::Wan());
  std::vector<std::unique_ptr<BftMember>> members;
  BftOrderBroadcast::Config config;
  for (int i = 0; i < n; ++i) {
    members.push_back(std::make_unique<BftMember>());
    config.group.push_back(net.AddNode(members.back().get()));
  }
  for (auto& m : members) {
    m->Init(config);
  }
  net.StartAll();

  const int kWrites = 20;
  Percentiles latency;
  for (int i = 0; i < kWrites; ++i) {
    SimTime start = sim.Now();
    members[1]->bcast().Broadcast(ToBytes("w" + std::to_string(i)));
    // Run until every member delivered this write.
    uint64_t want = static_cast<uint64_t>(i + 1);
    while (true) {
      bool all = true;
      for (const auto& m : members) {
        if (m->last_seq() < want) {
          all = false;
        }
      }
      if (all) {
        break;
      }
      if (!sim.Step()) {
        break;
      }
    }
    latency.Add(static_cast<double>(sim.Now() - start));
  }
  uint64_t messages = 0, auths = 0;
  for (const auto& m : members) {
    messages += m->bcast().protocol_messages_sent();
    auths += m->bcast().authenticators_computed();
  }
  EagerResult r;
  r.messages_per_write = static_cast<double>(messages) / kWrites;
  r.auth_ops_per_write = static_cast<double>(auths) / kWrites;
  r.commit_latency_ms = latency.Median() / 1000.0;
  return r;
}

// --- LAZY: the real system; count write-path messages per commit. ---

struct LazyResult {
  double messages_per_write = 0;
  double signatures_per_write = 0;
  double commit_latency_ms = 0;
  double slave_sync_ms = 0;  // write visible (applied) at every slave
};

LazyResult RunLazy(int masters, int slaves_total, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = masters;
  config.slaves_per_master = slaves_total / masters;
  config.num_clients = 1;
  config.corpus.n_items = 20;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.max_latency = 300 * kMillisecond;  // allow frequent writes
  config.params.keepalive_period = 150 * kMillisecond;
  config.default_link = LinkModel::Wan();
  config.client_mode = Client::LoadMode::kManual;
  config.track_ground_truth = false;
  Cluster cluster(config);
  cluster.RunFor(2 * kSecond);

  const int kWrites = 20;
  uint64_t messages_before = cluster.net().messages_sent();
  Percentiles commit_latency;
  Percentiles sync_latency;
  for (int i = 0; i < kWrites; ++i) {
    SimTime start = cluster.sim().Now();
    bool committed = false;
    cluster.client(0).IssueWrite(
        {WriteOp::Put("k" + std::to_string(i), "v")},
        [&](bool ok, uint64_t) { committed = ok; });
    while (!committed && cluster.sim().Step()) {
    }
    commit_latency.Add(static_cast<double>(cluster.sim().Now() - start));
    // Run until every slave applied the write.
    uint64_t want = static_cast<uint64_t>(i + 1);
    while (true) {
      bool all = true;
      for (int s = 0; s < cluster.num_slaves(); ++s) {
        if (cluster.slave(s).applied_version() < want) {
          all = false;
        }
      }
      if (all) {
        break;
      }
      if (!cluster.sim().Step()) {
        break;
      }
    }
    sync_latency.Add(static_cast<double>(cluster.sim().Now() - start));
    // Space the writes past the max_latency commit spacing so each write's
    // commit latency reflects the protocol round, not the pacing queue.
    cluster.RunFor(config.params.max_latency);
  }
  LazyResult r;
  // Keep-alives and gossip run regardless of writes; to isolate the write
  // path we charge: broadcast among masters (+auditor) + state updates +
  // acks. Approximate by total message delta minus the idle baseline.
  {
    // Measure the idle baseline over the same virtual duration.
    ClusterConfig idle_config = config;
    idle_config.seed = seed + 1;
    Cluster idle(std::move(idle_config));
    idle.RunFor(2 * kSecond);
    uint64_t idle_before = idle.net().messages_sent();
    idle.RunFor(cluster.sim().Now() - 2 * kSecond);
    uint64_t idle_messages = idle.net().messages_sent() - idle_before;
    uint64_t total = cluster.net().messages_sent() - messages_before;
    r.messages_per_write =
        static_cast<double>(total > idle_messages ? total - idle_messages : 0) /
        kWrites;
  }
  // Signatures on the write path: each master signs the token on its state
  // updates to its slaves — slaves_total in aggregate per write.
  r.signatures_per_write = static_cast<double>(slaves_total);
  r.commit_latency_ms = commit_latency.Median() / 1000.0;
  r.slave_sync_ms = sync_latency.Median() / 1000.0;
  return r;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  using namespace sdr;
  PrintHeader("E11: lazy state updates vs eager BFT ordering (Section 3)");
  Note("WAN links (40ms +/- 10ms one-way); 20 writes per cell");

  Row("%-28s %10s %12s %12s %14s", "design", "members", "msgs/write",
      "auth/write", "commitLat ms");
  for (int slaves : {3, 6, 12, 24}) {
    // EAGER: all masters (2) + auditor + slaves participate in BFT.
    int n = 3 + slaves;
    EagerResult eager = RunEager(n, 61);
    Row("%-28s %10d %12.1f %12.1f %14.1f",
        ("eager BFT (n=" + std::to_string(n) + ")").c_str(), n,
        eager.messages_per_write, eager.auth_ops_per_write,
        eager.commit_latency_ms);

    LazyResult lazy = RunLazy(2, slaves, 62);
    Row("%-28s %10d %12.1f %12.1f %14.1f  (all slaves synced in %.1f ms)",
        ("lazy (2 masters+" + std::to_string(slaves) + " slaves)").c_str(),
        3 + slaves, lazy.messages_per_write, lazy.signatures_per_write,
        lazy.commit_latency_ms, lazy.slave_sync_ms);
  }
  Note("shape: eager messages and authenticator operations grow");
  Note("quadratically with the replica count and the commit needs three");
  Note("WAN phases; lazy cost grows linearly in the slave count and the");
  Note("commit needs one master round, with propagation bounded by");
  Note("max_latency in the background — the paper's efficiency argument.");
  return 0;
}
