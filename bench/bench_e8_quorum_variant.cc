// E8 — The multi-slave read variant (paper Section 4).
//
// Claims:
//   - sending each read to k slaves forces malicious slaves to *collude*:
//     any disagreement triggers a mandatory double-check, so a wrong
//     answer passes only if every queried slave lies identically;
//   - the cost is k-fold execution on untrusted resources ("more computing
//     resources are needed ... but these resources need not be trusted").
//
// Sweep k and the number of (identically-)colluding slaves; measure the
// wrong-answer acceptance rate, double-check traffic, and slave work.
#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/core/multiread_client.h"

namespace sdr {
namespace {

struct Sample {
  uint64_t accepted = 0;
  uint64_t wrong = 0;
  uint64_t disagreements = 0;
  uint64_t double_checks = 0;
  uint64_t slave_work = 0;
  uint64_t excluded = 0;
};

Sample Run(int k, int colluders, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 1;
  config.slaves_per_master = k;
  config.num_clients = 0;  // we attach a MultiReadClient manually
  config.corpus.n_items = 100;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.02;
  // Colluders lie deterministically on every read, so their (wrong)
  // answers match each other exactly.
  config.slave_behavior = [colluders](int index) {
    Slave::Behavior b;
    if (index < colluders) {
      b.lie_probability = 1.0;
    }
    return b;
  };
  config.track_ground_truth = false;
  Cluster cluster(config);

  MultiReadClient::Options opts;
  opts.params = config.params;
  opts.slave_certs = cluster.master(0).my_slave_certs();
  opts.master_keys = {{cluster.master(0).id(), cluster.master(0).public_key()}};
  opts.master = cluster.master(0).id();
  opts.auditor = cluster.auditor().id();
  opts.rng_seed = seed;
  MultiReadClient client(opts);
  cluster.net().AddNode(&client);
  client.Start();

  // Ground truth via the master's op log.
  uint64_t wrong = 0;
  QueryExecutor truth;
  client.on_accept = [&](const Query& query, uint64_t version,
                         const QueryResult& result) {
    auto store = cluster.master(0).oplog().MaterializeAt(version);
    if (!store.ok()) {
      return;
    }
    auto expected = truth.Execute(*store, query);
    if (expected.ok() && !(expected->result == result)) {
      ++wrong;
    }
  };

  cluster.RunFor(2 * kSecond);  // let keep-alives arm the slaves

  QueryMix mix;
  mix.n_items = config.corpus.n_items;
  Rng qrng(seed * 13 + 1);
  std::function<void()> loop = [&] {
    client.IssueRead(mix.Generate(qrng),
                     [&](bool, const QueryResult&) {
                       cluster.sim().ScheduleAfter(50 * kMillisecond, loop);
                     });
  };
  loop();
  cluster.RunFor(120 * kSecond);

  Sample s;
  s.accepted = client.metrics().reads_accepted;
  s.wrong = wrong;
  s.disagreements = client.metrics().disagreements;
  s.double_checks = client.metrics().double_checks_sent;
  for (int i = 0; i < cluster.num_slaves(); ++i) {
    s.slave_work += cluster.slave(i).metrics().work_units_executed;
  }
  s.excluded = cluster.master(0).metrics().slaves_excluded;
  return s;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  using namespace sdr;
  PrintHeader("E8: multi-slave reads force collusion (Section 4)");
  Note("every read fans out to all k slaves; colluders lie identically on");
  Note("every answer; p(double-check)=0.02 on unanimous answers");
  Row("%-4s %-10s %9s %7s %10s %8s %10s %9s", "k", "colluders", "accepted",
      "wrong", "disagree", "dchecks", "slaveWork", "excluded");
  struct Cell {
    int k;
    int colluders;
  };
  for (const Cell& cell :
       {Cell{1, 0}, Cell{1, 1}, Cell{2, 1}, Cell{3, 1}, Cell{3, 2},
        Cell{3, 3}, Cell{5, 2}, Cell{5, 4}, Cell{5, 5}}) {
    Sample s = Run(cell.k, cell.colluders, 23);
    Row("%-4d %-10d %9llu %7llu %10llu %8llu %10llu %9llu", cell.k,
        cell.colluders, static_cast<unsigned long long>(s.accepted),
        static_cast<unsigned long long>(s.wrong),
        static_cast<unsigned long long>(s.disagreements),
        static_cast<unsigned long long>(s.double_checks),
        static_cast<unsigned long long>(s.slave_work),
        static_cast<unsigned long long>(s.excluded));
  }
  Note("shape: with any honest slave in the set, disagreement forces a");
  Note("double-check and liars are excluded (wrong=0 unless ALL k collude);");
  Note("slave work scales ~k-fold -- cheap untrusted resources.");
  return 0;
}
