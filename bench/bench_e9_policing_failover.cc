// E9 — Greedy-client policing and master-crash recovery
// (paper Sections 3 and 3.3).
//
// Part A: "by keeping track on the number of double-check requests it
// receives from each of its clients, a master can identify statistically
// anomalous client behavior ... The master can then enforce fair play by
// simply ignoring a large fraction of the double-check requests coming
// from clients suspected to be greedy." We measure the master's
// double-check service load with policing off vs on, and the collateral
// damage to honest clients.
//
// Part B: "in the event of a master crash, the remaining ones will divide
// its slave set ... all the clients connected to the crashed server will
// have to go through the setup process again." We measure the service
// interruption window and the recovered read rate.
#include "bench/bench_util.h"
#include "src/core/cluster.h"

namespace sdr {
namespace {

void PartA() {
  PrintHeader("E9a: greedy-client policing (Section 3.3)");
  Row("%-10s %12s %14s %16s %18s", "policing", "dcServed", "dcThrottled",
      "greedyUnserved", "honestUnserved");
  for (bool policing : {false, true}) {
    ClusterConfig config;
    config.seed = 29;
    config.num_masters = 1;
    config.slaves_per_master = 2;
    config.num_clients = 4;
    config.corpus.n_items = 50;
    config.params.scheme = SignatureScheme::kHmacSha256;
    config.params.double_check_probability = 0.02;
    config.params.greedy_policing_enabled = policing;
    config.params.greedy_refill_per_second = 0.5;
    config.params.greedy_burst = 10.0;
    config.params.audit_enabled = false;
    config.client_mode = Client::LoadMode::kClosedLoop;
    config.client_think_time = 25 * kMillisecond;
    config.track_ground_truth = false;
    config.tweak_client = [](int index, Client::Options& opts) {
      if (index == 0) {
        opts.greedy = true;  // double-checks 100% of reads
      }
    };
    Cluster cluster(config);
    cluster.RunFor(120 * kSecond);

    uint64_t honest_unserved = 0;
    for (int c = 1; c < cluster.num_clients(); ++c) {
      honest_unserved += cluster.client(c).metrics().double_checks_unserved;
    }
    Row("%-10s %12llu %14llu %16llu %18llu", policing ? "on" : "off",
        static_cast<unsigned long long>(
            cluster.master(0).metrics().double_checks_served),
        static_cast<unsigned long long>(
            cluster.master(0).metrics().double_checks_throttled),
        static_cast<unsigned long long>(
            cluster.client(0).metrics().double_checks_unserved),
        static_cast<unsigned long long>(honest_unserved));
  }
  Note("shape: policing slashes the master's double-check load to roughly");
  Note("the honest budget; the greedy client absorbs nearly all refusals.");
}

void PartB() {
  PrintHeader("E9b: master crash -> slave-set division + client re-setup");
  ClusterConfig config;
  config.seed = 30;
  config.num_masters = 3;
  config.slaves_per_master = 2;
  config.num_clients = 9;
  config.corpus.n_items = 50;
  config.params.scheme = SignatureScheme::kHmacSha256;
  // Clients must touch their master now and then to notice it died (reads
  // alone keep working off adopted slaves' fresh tokens).
  config.params.double_check_probability = 0.05;
  config.params.audit_enabled = false;
  config.params.gossip_period = 500 * kMillisecond;
  config.params.master_failure_timeout = 3 * kSecond;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 100 * kMillisecond;
  config.track_ground_truth = false;
  Cluster cluster(config);

  cluster.RunFor(15 * kSecond);
  uint64_t accepted_before = cluster.ComputeTotals().reads_accepted;
  int victims = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    if (cluster.client(c).master() == cluster.master(1).id()) {
      ++victims;
    }
  }
  Row("  t=15s: crash master %u (%d clients attached, %zu slaves)",
      cluster.master(1).id(), victims,
      cluster.master(1).my_slave_ids().size());
  cluster.net().SetNodeUp(cluster.master(1).id(), false);

  // Sample read progress each second to find the interruption window.
  SimTime adopted_at = -1, resumed_at = -1;
  uint64_t last = accepted_before;
  for (int sec = 0; sec < 45; ++sec) {
    cluster.RunFor(1 * kSecond);
    auto t = cluster.ComputeTotals();
    if (adopted_at < 0 && (cluster.master(0).metrics().slave_sets_adopted +
                           cluster.master(2).metrics().slave_sets_adopted) >
                              0) {
      adopted_at = cluster.sim().Now();
    }
    bool victims_recovered = true;
    for (int c = 0; c < cluster.num_clients(); ++c) {
      if (cluster.client(c).master() == cluster.master(1).id()) {
        victims_recovered = false;
      }
    }
    if (resumed_at < 0 && victims_recovered && t.reads_accepted > last + 5) {
      resumed_at = cluster.sim().Now();
    }
    last = t.reads_accepted;
  }
  Row("  slave set divided after %.1f s (survivors adopted %llu sets)",
      adopted_at < 0 ? -1.0 : (static_cast<double>(adopted_at) / kSecond - 15),
      static_cast<unsigned long long>(
          cluster.master(0).metrics().slave_sets_adopted +
          cluster.master(2).metrics().slave_sets_adopted));
  Row("  all victim clients re-setup and reading by %.1f s after crash",
      resumed_at < 0 ? -1.0 : (static_cast<double>(resumed_at) / kSecond - 15));
  uint64_t setups = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    setups += cluster.client(c).metrics().setups_completed;
  }
  Row("  total setups completed: %llu (initial 9 + re-setups)",
      static_cast<unsigned long long>(setups));
  auto t = cluster.ComputeTotals();
  Row("  reads accepted: %llu before crash, %llu total after 45s more",
      static_cast<unsigned long long>(accepted_before),
      static_cast<unsigned long long>(t.reads_accepted));
  Note("shape: division happens one failure-timeout after the crash; the");
  Note("interruption is bounded by client timeouts + re-setup RTTs.");
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  sdr::PartA();
  sdr::PartB();
  return 0;
}
