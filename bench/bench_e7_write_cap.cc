// E7 — The write-throughput cap and the read/write-ratio sweet spot
// (paper Sections 2, 3.1, 6).
//
// Claims:
//   - "two write operations cannot be, time-wise, closer than max_latency
//     to each other" => committed write throughput <= 1/max_latency;
//   - the architecture therefore suits workloads whose reads outnumber
//     writes "by at least an order of magnitude"; read goodput is
//     unaffected by spacing as long as writes stay below the cap, while
//     write latency explodes once offered write load exceeds it.
#include "bench/bench_util.h"
#include "src/core/cluster.h"

namespace sdr {
namespace {

struct Sample {
  double committed_per_sec = 0;
  double cap_per_sec = 0;
  double write_latency_ms = 0;
  double reads_per_sec = 0;
  // Commit-path signatures per committed write, summed across the group
  // (each replica master signs one state-update token per owned slave per
  // write), and the same cost projected under group commit at batch 8:
  // one token + one batch certificate per bundle per master (see
  // ProtocolParams::commit_batch), i.e. 2 * masters / batch.
  double sigs_per_write = 0;
  double sigs_per_write_batch8 = 0;
};

Sample Run(SimTime max_latency, double offered_writes_per_sec,
           double read_fraction_clients, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 2;
  config.slaves_per_master = 1;
  config.num_clients = 4;
  config.corpus.n_items = 50;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.0;
  config.params.audit_enabled = false;
  config.params.max_latency = max_latency;
  config.params.keepalive_period =
      std::min<SimTime>(250 * kMillisecond, max_latency / 2);
  config.client_mode = Client::LoadMode::kOpenLoop;
  config.track_ground_truth = false;
  // Some clients write at the offered rate; the rest read.
  int writers = std::max(1, static_cast<int>(
                                (1.0 - read_fraction_clients) *
                                config.num_clients));
  config.tweak_client = [&, writers](int index, Client::Options& opts) {
    if (index < writers) {
      opts.reads_per_second = offered_writes_per_sec / writers;
      opts.write_fraction = 1.0;  // pure writer
    } else {
      opts.reads_per_second = 5.0;
      opts.write_fraction = 0.0;
    }
  };
  Cluster cluster(config);
  const SimTime kRun = 120 * kSecond;
  cluster.RunFor(kRun);

  Sample s;
  uint64_t committed = cluster.master(0).metrics().writes_committed;
  s.committed_per_sec =
      static_cast<double>(committed) / (static_cast<double>(kRun) / kSecond);
  s.cap_per_sec = static_cast<double>(kSecond) / static_cast<double>(max_latency);
  uint64_t reads = 0;
  Percentiles wl;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    reads += cluster.client(c).metrics().reads_accepted;
  }
  s.reads_per_sec =
      static_cast<double>(reads) / (static_cast<double>(kRun) / kSecond);
  s.write_latency_ms =
      cluster.client(0).metrics().write_latency_us.Median() / 1000.0;
  uint64_t commit_sigs = 0;
  for (int m = 0; m < config.num_masters; ++m) {
    commit_sigs += cluster.master(m).metrics().commit_signatures;
  }
  if (committed > 0) {
    s.sigs_per_write =
        static_cast<double>(commit_sigs) / static_cast<double>(committed);
  }
  s.sigs_per_write_batch8 = 2.0 * config.num_masters / 8.0;
  return s;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  using namespace sdr;
  PrintHeader("E7: write throughput cap = 1/max_latency (Section 3.1)");
  Note("offered write load 4/s from 1 writer; 3 readers at 5/s each;");
  Note("sweep max_latency and watch commits clamp to the cap");
  Row("%-12s %10s %12s %14s %12s %10s %10s", "max_latency", "cap w/s",
      "committed/s", "writeLat ms", "reads/s", "sigs/wr", "proj@b8");
  for (SimTime ml : {250 * kMillisecond, 500 * kMillisecond, 1 * kSecond,
                     2 * kSecond, 4 * kSecond}) {
    Sample s = Run(ml, /*offered=*/4.0, /*read fraction=*/0.75, 17);
    Row("%-12.2f %10.1f %12.2f %14.1f %12.1f %10.2f %10.2f",
        static_cast<double>(ml) / kSecond, s.cap_per_sec, s.committed_per_sec,
        s.write_latency_ms, s.reads_per_sec, s.sigs_per_write,
        s.sigs_per_write_batch8);
  }

  PrintHeader("E7b: offered write load vs the cap (max_latency = 1s)");
  Row("%-14s %12s %14s %12s %10s %10s", "offered w/s", "committed/s",
      "writeLat ms", "reads/s", "sigs/wr", "proj@b8");
  for (double offered : {0.2, 0.5, 0.9, 2.0, 4.0}) {
    Sample s = Run(1 * kSecond, offered, 0.75, 18);
    Row("%-14.2f %12.2f %14.1f %12.1f %10.2f %10.2f", offered,
        s.committed_per_sec, s.write_latency_ms, s.reads_per_sec,
        s.sigs_per_write, s.sigs_per_write_batch8);
  }
  Note("shape: commits saturate at 1/max_latency; past the cap the write");
  Note("queue builds and write latency grows without bound, while read");
  Note("goodput stays flat -- hence the high read:write ratio requirement.");
  Note("sigs/wr is the measured commit-path signing cost per write;");
  Note("proj@b8 projects it under group commit (--commit_batch=8, one");
  Note("token + one batch certificate per bundle; bench_scale measures it).");
  return 0;
}
