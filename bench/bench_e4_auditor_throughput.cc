// E4 — Auditor throughput and its advantages over slaves (Section 3.4).
//
// Claim: the auditor achieves "a much higher throughput when
// (re)executing read operations" than the slaves it verifies because it
// (1) produces no digital signatures, (2) sends no answers to clients,
// (3) can use query optimization / result caching since it sees the whole
// batch in advance, and (4) spreads work over idle time.
//
// Part A ablates (1)-(3) with real CPU measurements: a stream of reads
// drawn from a Zipfian query population is processed by
//   - a slave-equivalent pipeline: execute + SHA-1 + Ed25519-sign + build
//     the reply message,
//   - an auditor without cache: execute + SHA-1 + compare,
//   - the full auditor: version-scoped result cache in front.
//
// Part B shows the same asymmetry inside the simulator's cost model, where
// the virtual service times come from the CostModel used by E1/E5.
// A third mode, --trace-overhead, prices the observability subsystem: the
// same cluster workload runs with tracing disabled and enabled, and the
// disabled run is the one that must stay within noise of the pre-trace
// code (every instrumentation site reduces to one untaken null check).
#include <algorithm>
#include <chrono>
#include <cstring>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/core/config.h"
#include "src/core/pledge.h"
#include "src/crypto/sha1.h"
#include "src/store/executor.h"
#include "src/workload/workload.h"

namespace sdr {
namespace {

struct Stream {
  std::vector<Query> queries;
  DocumentStore store;
};

Stream MakeStream(size_t n_queries, uint64_t seed) {
  Stream s;
  Rng rng(seed);
  CorpusConfig corpus;
  corpus.n_items = 500;
  s.store = BuildCatalogCorpus(corpus, rng);
  QueryMix mix;
  mix.n_items = corpus.n_items;
  // A read population with realistic repetition: clients hammer popular
  // keys and a handful of canned aggregate/grep queries.
  for (size_t i = 0; i < n_queries; ++i) {
    s.queries.push_back(mix.Generate(rng));
  }
  return s;
}

double MeasureRealSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// Wall-clock seconds to simulate a fixed cluster workload with the given
// trace configuration. The workload exercises the instrumented hot paths:
// reads, pledge forwarding, audits, double-checks, and a lying slave.
double RunTracedWorkload(bool trace_enabled, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 4;
  config.corpus.n_items = 100;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.05;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 5 * kMillisecond;
  config.client_write_fraction = 0.02;
  config.track_ground_truth = false;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 0.01;
    }
    return b;
  };
  config.trace.enabled = trace_enabled;
  Cluster cluster(config);
  return MeasureRealSeconds([&] { cluster.RunFor(120 * kSecond); });
}

int TraceOverheadMode() {
  PrintHeader("E4x: tracing overhead on the simulation hot path");
  Note("same 120-virtual-second workload, tracing off vs on; the paper-mode");
  Note("contract is that disabled tracing costs <=1% (one untaken branch");
  Note("per instrumentation site).");

  const int kReps = 5;
  // Interleave off/on repetitions so CPU frequency drift hits both arms
  // equally; keep the fastest rep of each arm (standard wall-noise filter).
  double best_off = 1e9, best_on = 1e9;
  (void)RunTracedWorkload(false, 7);  // warm-up, not measured
  for (int r = 0; r < kReps; ++r) {
    best_off = std::min(best_off, RunTracedWorkload(false, 7));
    best_on = std::min(best_on, RunTracedWorkload(true, 7));
  }

  Row("%-34s %12.1f ms", "tracing disabled (best of 5)", 1e3 * best_off);
  Row("%-34s %12.1f ms", "tracing enabled  (best of 5)", 1e3 * best_on);
  Row("%-34s %11.2f%%", "enabled overhead",
      100.0 * (best_on - best_off) / best_off);
  ReportBenchmark("E4_trace_overhead/disabled", kReps, 1e3 * best_off,
                  1e3 * best_off, "ms");
  ReportBenchmark("E4_trace_overhead/enabled", kReps, 1e3 * best_on,
                  1e3 * best_on, "ms",
                  {{"overhead_fraction", (best_on - best_off) / best_off}});
  return 0;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  using namespace sdr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-overhead") == 0 ||
        std::strcmp(argv[i], "--trace_overhead") == 0) {
      return TraceOverheadMode();
    }
  }
  PrintHeader("E4: auditor vs slave read-verification throughput (S3.4)");

  const size_t kN = 4000;
  Stream stream = MakeStream(kN, 21);

  Rng rng(22);
  KeyPair slave_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer slave_signer(slave_kp);
  KeyPair master_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer master_signer(master_kp);
  VersionToken token = MakeVersionToken(master_signer, 1, 3, 0);

  Note("part A: real CPU, " + std::to_string(kN) +
       " reads, 500-item catalogue, Ed25519 signatures");
  Row("%-34s %12s %14s %9s", "pipeline", "reads/sec", "us/read", "speedup");

  // Slave-equivalent: execute + hash + sign pledge (reply build included).
  QueryExecutor slave_exec;
  double slave_secs = MeasureRealSeconds([&] {
    for (const Query& q : stream.queries) {
      auto outcome = slave_exec.Execute(stream.store, q);
      Bytes digest = outcome->result.Sha1Digest();
      Pledge pledge = MakePledge(slave_signer, 9, q, digest, token);
      (void)pledge;
    }
  });

  // Auditor without cache: execute + hash + compare.
  QueryExecutor plain_exec(/*cache_regex=*/false);
  double nocache_secs = MeasureRealSeconds([&] {
    for (const Query& q : stream.queries) {
      auto outcome = plain_exec.Execute(stream.store, q);
      Bytes digest = outcome->result.Sha1Digest();
      (void)digest;
    }
  });

  // Full auditor: result cache keyed by query encoding (one version).
  QueryExecutor cached_exec(/*cache_regex=*/true);
  std::map<Bytes, Bytes> result_cache;
  uint64_t hits = 0;
  double cache_secs = MeasureRealSeconds([&] {
    for (const Query& q : stream.queries) {
      Bytes key = q.Encode();
      auto it = result_cache.find(key);
      if (it != result_cache.end()) {
        ++hits;
        continue;
      }
      auto outcome = cached_exec.Execute(stream.store, q);
      result_cache[key] = outcome->result.Sha1Digest();
    }
  });

  auto report = [&](const char* name, const std::string& bench_name,
                    double secs) {
    Row("%-34s %12.0f %14.2f %8.1fx", name, kN / secs, 1e6 * secs / kN,
        slave_secs / secs);
    ReportBenchmark("E4_pipeline/" + bench_name, static_cast<int64_t>(kN),
                    1e3 * secs, 1e3 * secs, "ms",
                    {{"reads_per_sec", static_cast<double>(kN) / secs},
                     {"us_per_read", 1e6 * secs / static_cast<double>(kN)},
                     {"speedup_vs_slave", slave_secs / secs}});
  };
  report("slave: exec+hash+sign", "slave", slave_secs);
  report("auditor: exec+hash (no sign)", "auditor_nocache", nocache_secs);
  report("auditor: + result cache", "auditor_cached", cache_secs);
  Row("  cache hit rate: %.0f%% (%llu/%zu)",
      100.0 * static_cast<double>(hits) / static_cast<double>(kN),
      static_cast<unsigned long long>(hits), kN);

  // ---- Part B: the simulator's cost model view. ----
  Note("part B: virtual service time per read under the CostModel");
  CostModel cost;
  QueryExecutor exec2;
  double slave_us = 0, auditor_us = 0;
  for (const Query& q : stream.queries) {
    auto outcome = exec2.Execute(stream.store, q);
    size_t result_bytes = outcome->result.Encode().size();
    slave_us += static_cast<double>(
        cost.ExecuteTime(outcome->cost, result_bytes) + cost.SignTime());
    auditor_us +=
        static_cast<double>(cost.ExecuteTime(outcome->cost, result_bytes));
  }
  Row("%-34s %14.2f", "slave virtual us/read", slave_us / kN);
  Row("%-34s %14.2f", "auditor virtual us/read", auditor_us / kN);
  Row("%-34s %13.1fx", "model speedup (no cache)", slave_us / auditor_us);
  Note("shape: dropping the signature wins most on cheap reads; the result");
  Note("cache multiplies throughput under repetitive (Zipfian) queries.");
  return 0;
}
