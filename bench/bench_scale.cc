// E13 — Scale-out: keyspace sharding, group commit, and a million-client
// fleet (src/core/shard.h, src/workload/fleet.h; beyond the paper).
//
// Claims:
//   - each shard owns an independent master group, slave set and version
//     sequence, so both read service capacity and E7's per-group write
//     cap (one commit per max_latency) multiply by the shard count: on a
//     saturating write-heavy workload, events/sec at 4 shards >= 2x the
//     single-group figure;
//   - master-side group commit amortizes the commit-path signing: one
//     head token + one batch certificate per bundle instead of one token
//     signature per slave per write, so at --commit_batch=8 the per-write
//     signature cost drops >= 4x while commits stay spaced >= max_latency
//     apart (the paper's inconsistency-window bound is untouched);
//   - the fleet node keeps 8 bytes of generator state per simulated
//     client, so a 10^6-client open-loop workload runs in one process.
//
// Events/sec counts client-observed accepted reads plus writes committed
// by the replicated masters (one count per shard, not per replica):
// under E7-style write overload most fleet write RPCs time out before
// their commit slot arrives, so the master-side count is the honest
// measure of replicated write throughput.
//
//   --json BENCH_SCALE.json   mirrors every table into CI's artifact.
#include "bench/bench_util.h"
#include "src/core/cluster.h"

namespace sdr {
namespace {

struct Sample {
  double events_per_sec = 0;
  double reads_per_sec = 0;
  double writes_per_sec = 0;  // committed, unique per shard
  double read_p50_ms = 0;
  double read_p99_ms = 0;
  double sigs_per_write = 0;
  uint64_t batches = 0;
};

struct Shape {
  int shards = 1;
  int fleet_clients = 0;
  uint32_t commit_batch = 1;
  double rps = 0.2;             // per simulated client
  double write_fraction = 0.5;  // E7-shaped: write-heavy
  SimTime duration = 10 * kSecond;
};

Sample Run(const Shape& shape, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_shards = shape.shards;
  config.num_masters = 1;
  config.slaves_per_master = 4;
  config.num_clients = 1;  // the fleet carries the load
  config.fleet_clients = shape.fleet_clients;
  config.fleet_reads_per_second = shape.rps;
  config.fleet_write_fraction = shape.write_fraction;
  config.corpus.n_items = 800;
  config.params.scheme = SignatureScheme::kNull;
  config.params.max_latency = 500 * kMillisecond;
  config.params.keepalive_period = 250 * kMillisecond;
  config.params.double_check_probability = 0.0;
  config.params.audit_enabled = false;  // measure serving, not auditing
  config.params.commit_batch = shape.commit_batch;
  config.params.commit_window = 50 * kMillisecond;
  config.client_mode = Client::LoadMode::kManual;  // client 0 idles
  config.track_ground_truth = false;
  Cluster cluster(config);
  cluster.RunFor(shape.duration);

  const double secs = static_cast<double>(shape.duration) / kSecond;
  const ClientFleet::Metrics& fm = cluster.fleet()->metrics();
  auto totals = cluster.ComputeTotals();

  Sample s;
  // One master per shard here, so per-master commits are per-shard unique.
  uint64_t writes = totals.writes_committed_masters;
  s.reads_per_sec = static_cast<double>(fm.reads_accepted) / secs;
  s.writes_per_sec = static_cast<double>(writes) / secs;
  s.events_per_sec = s.reads_per_sec + s.writes_per_sec;
  s.read_p50_ms = fm.read_rtt_us.Median() / 1000.0;
  s.read_p99_ms = fm.read_rtt_us.P99() / 1000.0;
  s.sigs_per_write =
      writes == 0 ? 0.0
                  : static_cast<double>(totals.commit_signatures) /
                        static_cast<double>(writes);
  s.batches = totals.batches_committed;
  return s;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  using namespace sdr;
  // CI runs with --small; the full sweep reaches 10^6 simulated clients.
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--small") {
      small = true;
    }
  }
  const int kLoadClients = small ? 120000 : 240000;
  const SimTime kDuration = small ? 5 * kSecond : 10 * kSecond;

  PrintHeader("E13: events/sec vs shard count (write-heavy, saturating)");
  Note("fleet open-loop load saturates one group's slaves and write cap;");
  Note("each shard adds an independent group, so capacity multiplies");
  Row("%-8s %10s %12s %12s %12s %10s %10s", "shards", "clients", "events/s",
      "reads/s", "writes/s", "p50 ms", "p99 ms");
  double base_events = 0, four_shard_events = 0;
  for (int shards : {1, 2, 4}) {
    Shape shape;
    shape.shards = shards;
    shape.fleet_clients = kLoadClients;
    shape.duration = kDuration;
    Sample s = Run(shape, 29);
    if (shards == 1) {
      base_events = s.events_per_sec;
    }
    if (shards == 4) {
      four_shard_events = s.events_per_sec;
    }
    Row("%-8d %10d %12.0f %12.0f %12.1f %10.1f %10.1f", shards,
        shape.fleet_clients, s.events_per_sec, s.reads_per_sec,
        s.writes_per_sec, s.read_p50_ms, s.read_p99_ms);
    ReportBenchmark("e13_shards/" + std::to_string(shards), 1,
                    s.events_per_sec, s.events_per_sec, "events_per_second",
                    {{"reads_per_sec", s.reads_per_sec},
                     {"writes_per_sec", s.writes_per_sec},
                     {"read_p50_ms", s.read_p50_ms},
                     {"read_p99_ms", s.read_p99_ms}});
  }
  Row("%-8s %10s %12.2f", "speedup", "4v1",
      base_events == 0 ? 0.0 : four_shard_events / base_events);

  PrintHeader("E13b: group commit vs per-write commit (single group)");
  Note("signature cost = commit-path signatures / committed writes;");
  Note("unbatched that is one token signature per slave per write");
  Row("%-8s %12s %14s %12s %12s", "batch", "writes/s", "sigs/write",
      "batches", "p50 ms");
  double base_sigs = 0, batched_sigs = 0;
  for (uint32_t batch : {1u, 2u, 4u, 8u}) {
    Shape shape;
    shape.fleet_clients = small ? 20000 : 40000;  // reads under capacity
    shape.commit_batch = batch;
    shape.duration = kDuration;
    Sample s = Run(shape, 31);
    if (batch == 1) {
      base_sigs = s.sigs_per_write;
    }
    if (batch == 8) {
      batched_sigs = s.sigs_per_write;
    }
    Row("%-8u %12.1f %14.2f %12llu %12.1f", batch, s.writes_per_sec,
        s.sigs_per_write, (unsigned long long)s.batches, s.read_p50_ms);
    ReportBenchmark("e13_commit_batch/" + std::to_string(batch), 1,
                    s.sigs_per_write, s.sigs_per_write, "sigs_per_write",
                    {{"writes_per_sec", s.writes_per_sec},
                     {"batches", static_cast<double>(s.batches)}});
  }
  Row("%-8s %12s %14.2f", "sig-cut", "8v1",
      batched_sigs == 0 ? 0.0 : base_sigs / batched_sigs);

  PrintHeader("E13c: the million-client fleet (4 shards, batch 8)");
  Note("8 bytes of generator state per client; arrivals are one Poisson");
  Note("superposition, so memory and host time scale with rate, not count");
  Row("%-10s %10s %12s %12s %10s %10s", "clients", "shards", "events/s",
      "reads/s", "p50 ms", "p99 ms");
  for (int clients : small ? std::vector<int>{100000}
                           : std::vector<int>{100000, 1000000}) {
    Shape shape;
    shape.shards = 4;
    shape.fleet_clients = clients;
    shape.commit_batch = 8;
    shape.rps = small ? 0.05 : 24000.0 / clients;  // fixed aggregate rate
    shape.duration = kDuration;
    Sample s = Run(shape, 37);
    Row("%-10d %10d %12.0f %12.0f %10.1f %10.1f", clients, shape.shards,
        s.events_per_sec, s.reads_per_sec, s.read_p50_ms, s.read_p99_ms);
    ReportBenchmark("e13_fleet/" + std::to_string(clients), 1,
                    s.events_per_sec, s.events_per_sec, "events_per_second",
                    {{"read_p50_ms", s.read_p50_ms},
                     {"read_p99_ms", s.read_p99_ms}});
  }
  Note("shape: events/sec doubles+ by 4 shards; sigs/write falls ~batch-");
  Note("fold; a 10^6-client sweep fits one process at a fixed event rate.");
  return 0;
}
