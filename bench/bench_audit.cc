// bench_audit — the audit-engine benchmark behind BENCH_AUDIT.json.
//
// Two parts, both full-cluster simulations measured in host wall time:
//
//   Part A (E4 closed-loop workload): auditor throughput as pledges
//   audited per host second, for the ablated engine (no dedup/memo), the
//   single-lane engine, and the engine at --jobs lanes. The simulated
//   outputs of the last two are identical by construction; the comparison
//   is purely host CPU.
//
//   Part B (E5 diurnal shape): one full diurnal cycle of open-loop reads
//   with a 2% write mix against an undersized auditor; reports audit-lag
//   p50/p99 (time from a version's commit to its finalization) plus the
//   dedup/memo hit rates and the re-execution cut — audited pledges per
//   actual query execution — that keep the backlog bounded.
//
// --benchmark_out=BENCH_AUDIT.json writes the google-benchmark-schema
// artifact CI archives next to BENCH_SIM.json.
#include <chrono>
#include <string>

#include "bench/bench_util.h"
#include "src/core/cluster.h"
#include "src/trace/trace.h"

namespace sdr {
namespace {

struct EngineRun {
  double wall_s = 0;
  AuditorMetrics am;
  uint64_t pledges_audited = 0;
  double lag_p50_ms = 0;
  double lag_p99_ms = 0;
};

double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

// The E4 cluster of bench_sim_core's e4_events: closed-loop clients with a
// small write mix and one low-rate liar, HMAC signatures.
ClusterConfig E4Config(uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 4;
  config.corpus.n_items = 100;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.05;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 5 * kMillisecond;
  config.client_write_fraction = 0.02;
  config.track_ground_truth = false;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 0.01;
    }
    return b;
  };
  return config;
}

EngineRun RunE4(int audit_jobs, bool use_cache, uint64_t seed) {
  ClusterConfig config = E4Config(seed);
  config.auditor_use_cache = use_cache;
  config.audit_jobs = audit_jobs;
  Cluster cluster(config);
  EngineRun r;
  r.wall_s = WallSeconds([&] { cluster.RunFor(120 * kSecond); });
  r.am = cluster.auditor().metrics();
  r.pledges_audited = r.am.pledges_audited;
  return r;
}

// E5's diurnal shape (raised cosine, 3AM trough) over one full cycle, with
// writes so the memo must prove versions equivalent rather than assume
// them. The auditor is deliberately slow relative to the query cost so the
// daytime peak produces real lag.
EngineRun RunDiurnal(int audit_jobs, bool use_cache, uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 2;
  config.corpus.n_items = 100;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.0;
  config.cost.work_unit_us = 1000.0;
  // bench_e5's undersized auditor: it falls behind through the daytime
  // peak unless dedup+memo collapse the queued re-executions.
  config.cost.auditor_speed = 0.075;
  config.auditor_use_cache = use_cache;
  config.audit_jobs = audit_jobs;
  config.mix.get_weight = 0.4;
  config.mix.scan_weight = 0.2;
  config.mix.grep_weight = 0.25;
  config.mix.agg_weight = 0.15;
  config.client_mode = Client::LoadMode::kOpenLoop;
  config.client_reads_per_second = 1.5;
  config.client_write_fraction = 0.02;
  DiurnalShape shape;
  config.client_rate_multiplier = [shape](SimTime t) {
    return shape.Multiplier(t);
  };
  config.track_ground_truth = false;
  config.trace.enabled = true;  // audit_lag_us histogram

  Cluster cluster(config);
  EngineRun r;
  r.wall_s = WallSeconds([&] { cluster.RunFor(24 * kHour); });
  r.am = cluster.auditor().metrics();
  r.pledges_audited = r.am.pledges_audited;
  auto merged = cluster.trace()->MergedHistograms();
  auto lag = merged.find("audit_lag_us");
  if (lag != merged.end()) {
    r.lag_p50_ms = lag->second.Median() / 1000.0;
    r.lag_p99_ms = lag->second.P99() / 1000.0;
  }
  return r;
}

double Rate(uint64_t part, uint64_t whole) {
  return whole == 0 ? 0.0 : static_cast<double>(part) / static_cast<double>(whole);
}

// Audited pledges per actual re-execution: how much work dedup + memo save.
double ReexecCut(const AuditorMetrics& am) {
  uint64_t execs = am.reexec_memo_misses == 0 ? 1 : am.reexec_memo_misses;
  return static_cast<double>(am.pledges_audited) / static_cast<double>(execs);
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  int jobs = sdr::ParseJobsFlag(argc, argv);
  using namespace sdr;

  PrintHeader("AUDIT: engine throughput on the E4 workload (120 virtual s)");
  Note("ablated = no dedup/memo (every pledge re-executes); engine runs are");
  Note("byte-identical in simulated output at any lane count.");
  Row("%-34s %12s %14s %10s", "engine", "pledges/sec", "wall ms", "reexec-cut");

  const uint64_t kSeed = 7;
  const int kReps = 3;
  auto best_e4 = [&](int audit_jobs, bool use_cache) {
    EngineRun best;
    for (int i = 0; i < kReps; ++i) {
      EngineRun r = RunE4(audit_jobs, use_cache, kSeed);
      if (i == 0 || r.wall_s < best.wall_s) {
        best = r;
      }
    }
    return best;
  };
  (void)RunE4(1, true, kSeed);  // warm-up, not measured

  EngineRun ablated = best_e4(1, false);
  EngineRun lane1 = best_e4(1, true);
  EngineRun laneN = best_e4(jobs, true);

  auto report_e4 = [](const char* label, const std::string& bench_name,
                      const EngineRun& r, double extra_jobs) {
    double per_sec = static_cast<double>(r.pledges_audited) / r.wall_s;
    Row("%-34s %12.0f %14.1f %9.2fx", label, per_sec, 1e3 * r.wall_s,
        ReexecCut(r.am));
    ReportBenchmark(
        "audit_engine/" + bench_name, static_cast<int64_t>(r.pledges_audited),
        1e3 * r.wall_s, 1e3 * r.wall_s, "ms",
        {{"pledges_per_sec", per_sec},
         {"pledges_audited", static_cast<double>(r.pledges_audited)},
         {"pledges_deduped", static_cast<double>(r.am.pledges_deduped)},
         {"reexec_memo_hits", static_cast<double>(r.am.reexec_memo_hits)},
         {"reexec_memo_misses", static_cast<double>(r.am.reexec_memo_misses)},
         {"dedup_hit_rate", Rate(r.am.pledges_deduped, r.pledges_audited)},
         {"memo_hit_rate",
          Rate(r.am.reexec_memo_hits,
               r.am.reexec_memo_hits + r.am.reexec_memo_misses)},
         {"reexec_cut", ReexecCut(r.am)},
         {"jobs", extra_jobs}});
  };
  report_e4("ablated (no dedup/memo)", "e4_ablated", ablated, 1);
  report_e4("engine, 1 lane", "e4_lane1", lane1, 1);
  report_e4("engine, --jobs lanes", "e4_parallel", laneN,
            static_cast<double>(jobs));
  Row("  engine speedup over ablated: %.2fx (1 lane), %.2fx (%d lanes)",
      ablated.wall_s / lane1.wall_s, ablated.wall_s / laneN.wall_s, jobs);

  PrintHeader("AUDIT: lag under the E5 diurnal shape (24 virtual hours)");
  Note("open-loop diurnal reads + 2% writes against a 0.075x-speed auditor;");
  Note("lag = commit-to-finalization time of each version.");
  Row("%-34s %10s %10s %10s %10s", "engine", "lag p50", "lag p99", "memo-rate",
      "reexec-cut");

  EngineRun diurnal_off = RunDiurnal(1, false, 31);
  EngineRun diurnal_on = RunDiurnal(jobs, true, 31);

  auto report_diurnal = [](const char* label, const std::string& bench_name,
                           const EngineRun& r) {
    double memo_rate = Rate(
        r.am.reexec_memo_hits, r.am.reexec_memo_hits + r.am.reexec_memo_misses);
    Row("%-34s %8.0fms %8.0fms %9.2f %9.2fx", label, r.lag_p50_ms,
        r.lag_p99_ms, memo_rate, ReexecCut(r.am));
    ReportBenchmark(
        "audit_engine/" + bench_name, static_cast<int64_t>(r.pledges_audited),
        1e3 * r.wall_s, 1e3 * r.wall_s, "ms",
        {{"pledges_per_sec",
          static_cast<double>(r.pledges_audited) / r.wall_s},
         {"pledges_audited", static_cast<double>(r.pledges_audited)},
         {"audit_lag_p50_ms", r.lag_p50_ms},
         {"audit_lag_p99_ms", r.lag_p99_ms},
         {"pledges_deduped", static_cast<double>(r.am.pledges_deduped)},
         {"reexec_memo_hits", static_cast<double>(r.am.reexec_memo_hits)},
         {"reexec_memo_misses", static_cast<double>(r.am.reexec_memo_misses)},
         {"dedup_hit_rate", Rate(r.am.pledges_deduped, r.pledges_audited)},
         {"memo_hit_rate", memo_rate},
         {"reexec_cut", ReexecCut(r.am)}});
  };
  report_diurnal("ablated (no dedup/memo)", "e5_diurnal_ablated", diurnal_off);
  report_diurnal("engine", "e5_diurnal_engine", diurnal_on);

  Note("shape: dedup+memo turn the daytime peak's repeated queries into");
  Note("comparisons, so the simulated auditor stops lagging and the host");
  Note("re-executes a small fraction of the audited pledges.");
  return 0;
}
