// Shared helpers for the experiment benchmark binaries (E1..E9, E11):
// aligned table printing and common cluster settings. The experiment
// binaries print paper-style tables; bench_e10_micro uses google-benchmark
// directly (its JSON comes from --benchmark_out).
//
// Every table-style binary accepts
//   --json <path>   (or --json=<path>)
// which mirrors everything printed through PrintHeader/Row/Note into a
// machine-readable JSON file at exit, so CI can archive the numbers.
#ifndef SDR_BENCH_BENCH_UTIL_H_
#define SDR_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace sdr {

namespace bench_internal {

struct JsonSection {
  std::string title;
  std::vector<std::string> rows;
  std::vector<std::string> notes;
};

struct JsonState {
  std::string path;  // empty = JSON capture disabled
  std::vector<JsonSection> sections;
};

inline JsonState& State() {
  static JsonState state;
  return state;
}

inline std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline void WriteJsonAtExit() {
  JsonState& s = State();
  if (s.path.empty()) {
    return;
  }
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open --json file %s\n", s.path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"sections\": [");
  for (size_t i = 0; i < s.sections.size(); ++i) {
    const JsonSection& sec = s.sections[i];
    std::fprintf(f, "%s\n    {\n      \"title\": \"%s\",\n", i ? "," : "",
                 JsonEscape(sec.title).c_str());
    std::fprintf(f, "      \"rows\": [");
    for (size_t r = 0; r < sec.rows.size(); ++r) {
      std::fprintf(f, "%s\n        \"%s\"", r ? "," : "",
                   JsonEscape(sec.rows[r]).c_str());
    }
    std::fprintf(f, "%s],\n", sec.rows.empty() ? "" : "\n      ");
    std::fprintf(f, "      \"notes\": [");
    for (size_t n = 0; n < sec.notes.size(); ++n) {
      std::fprintf(f, "%s\n        \"%s\"", n ? "," : "",
                   JsonEscape(sec.notes[n]).c_str());
    }
    std::fprintf(f, "%s]\n    }", sec.notes.empty() ? "" : "\n      ");
  }
  std::fprintf(f, "%s]\n}\n", s.sections.empty() ? "" : "\n  ");
  std::fclose(f);
}

inline JsonSection* CurrentSection() {
  JsonState& s = State();
  if (s.path.empty()) {
    return nullptr;
  }
  if (s.sections.empty()) {
    s.sections.push_back(JsonSection{});  // rows printed before any header
  }
  return &s.sections.back();
}

}  // namespace bench_internal

// Parses the flags shared by the experiment binaries; unknown arguments are
// ignored so binaries can add their own. Safe to call with (0, nullptr).
inline void ParseBenchFlags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      bench_internal::State().path = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      bench_internal::State().path = arg + 7;
    }
  }
  if (!bench_internal::State().path.empty()) {
    std::atexit(bench_internal::WriteJsonAtExit);
  }
}

// Prints a header like:
//   === E2: double-check probability sweep ===
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!bench_internal::State().path.empty()) {
    bench_internal::JsonSection section;
    section.title = title;
    bench_internal::State().sections.push_back(std::move(section));
  }
}

// Fixed-width row printing: Row("%-10s %8.2f", ...).
inline void Row(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fputs(buf, stdout);
  std::fputc('\n', stdout);
  if (auto* section = bench_internal::CurrentSection()) {
    section->rows.emplace_back(buf);
  }
}

inline void Note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
  if (auto* section = bench_internal::CurrentSection()) {
    section->notes.push_back(text);
  }
}

}  // namespace sdr

#endif  // SDR_BENCH_BENCH_UTIL_H_
