// Shared helpers for the experiment benchmark binaries (E1..E9): aligned
// table printing and common cluster settings. The experiment binaries print
// paper-style tables; bench_e10_micro uses google-benchmark directly.
#ifndef SDR_BENCH_BENCH_UTIL_H_
#define SDR_BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace sdr {

// Prints a header like:
//   === E2: double-check probability sweep ===
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Fixed-width row printing: Row("%-10s %8.2f", ...).
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
  std::fputc('\n', stdout);
}

inline void Note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
}

}  // namespace sdr

#endif  // SDR_BENCH_BENCH_UTIL_H_
