// Shared helpers for the experiment benchmark binaries (E1..E9, E11):
// aligned table printing and common cluster settings. The experiment
// binaries print paper-style tables; bench_e10_micro uses google-benchmark
// directly (its JSON comes from --benchmark_out).
//
// Every table-style binary accepts
//   --json <path>   (or --json=<path>)
// which mirrors everything printed through PrintHeader/Row/Note into a
// machine-readable JSON file at exit, so CI can archive the numbers.
#ifndef SDR_BENCH_BENCH_UTIL_H_
#define SDR_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace sdr {

namespace bench_internal {

struct JsonSection {
  std::string title;
  std::vector<std::string> rows;
  std::vector<std::string> notes;
};

// One measurement in google-benchmark's JSON schema; written by
// --benchmark_out so the artifacts are readable by the google-benchmark
// tooling (compare.py) and by the same CI scripts that consume E10's
// native google-benchmark output.
struct BenchmarkEntry {
  std::string name;
  int64_t iterations = 1;
  double real_time = 0;
  double cpu_time = 0;
  std::string time_unit = "us";
  std::vector<std::pair<std::string, double>> counters;
};

struct JsonState {
  std::string path;  // empty = JSON capture disabled
  std::vector<JsonSection> sections;
  std::string benchmark_out;  // empty = gbench-style capture disabled
  std::string executable;
  std::vector<BenchmarkEntry> benchmarks;
};

inline JsonState& State() {
  static JsonState state;
  return state;
}

inline std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline void WriteJsonAtExit() {
  JsonState& s = State();
  if (s.path.empty()) {
    return;
  }
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open --json file %s\n", s.path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"sections\": [");
  for (size_t i = 0; i < s.sections.size(); ++i) {
    const JsonSection& sec = s.sections[i];
    std::fprintf(f, "%s\n    {\n      \"title\": \"%s\",\n", i ? "," : "",
                 JsonEscape(sec.title).c_str());
    std::fprintf(f, "      \"rows\": [");
    for (size_t r = 0; r < sec.rows.size(); ++r) {
      std::fprintf(f, "%s\n        \"%s\"", r ? "," : "",
                   JsonEscape(sec.rows[r]).c_str());
    }
    std::fprintf(f, "%s],\n", sec.rows.empty() ? "" : "\n      ");
    std::fprintf(f, "      \"notes\": [");
    for (size_t n = 0; n < sec.notes.size(); ++n) {
      std::fprintf(f, "%s\n        \"%s\"", n ? "," : "",
                   JsonEscape(sec.notes[n]).c_str());
    }
    std::fprintf(f, "%s]\n    }", sec.notes.empty() ? "" : "\n      ");
  }
  std::fprintf(f, "%s]\n}\n", s.sections.empty() ? "" : "\n  ");
  std::fclose(f);
}

inline void WriteBenchmarkOutAtExit() {
  JsonState& s = State();
  if (s.benchmark_out.empty()) {
    return;
  }
  std::FILE* f = std::fopen(s.benchmark_out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open --benchmark_out file %s\n",
                 s.benchmark_out.c_str());
    return;
  }
  // Context block matches google-benchmark's layout; fields whose values
  // would vary run to run (date, host) stay fixed so the artifact diffs
  // clean across CI runs of the same commit.
  std::fprintf(f,
               "{\n  \"context\": {\n    \"date\": \"\",\n"
               "    \"host_name\": \"\",\n    \"executable\": \"%s\",\n"
               "    \"num_cpus\": 0,\n    \"mhz_per_cpu\": 0,\n"
               "    \"cpu_scaling_enabled\": false,\n    \"caches\": [],\n"
               "    \"library_build_type\": \"release\"\n  },\n",
               JsonEscape(s.executable).c_str());
  std::fprintf(f, "  \"benchmarks\": [");
  for (size_t i = 0; i < s.benchmarks.size(); ++i) {
    const BenchmarkEntry& b = s.benchmarks[i];
    std::fprintf(f,
                 "%s\n    {\n      \"name\": \"%s\",\n"
                 "      \"run_name\": \"%s\",\n"
                 "      \"run_type\": \"iteration\",\n"
                 "      \"repetitions\": 1,\n"
                 "      \"repetition_index\": 0,\n"
                 "      \"threads\": 1,\n"
                 "      \"iterations\": %lld,\n"
                 "      \"real_time\": %.6g,\n"
                 "      \"cpu_time\": %.6g,\n"
                 "      \"time_unit\": \"%s\"",
                 i ? "," : "", JsonEscape(b.name).c_str(),
                 JsonEscape(b.name).c_str(),
                 static_cast<long long>(b.iterations), b.real_time, b.cpu_time,
                 JsonEscape(b.time_unit).c_str());
    for (const auto& [key, value] : b.counters) {
      std::fprintf(f, ",\n      \"%s\": %.6g", JsonEscape(key).c_str(), value);
    }
    std::fprintf(f, "\n    }");
  }
  std::fprintf(f, "%s]\n}\n", s.benchmarks.empty() ? "" : "\n  ");
  std::fclose(f);
}

inline JsonSection* CurrentSection() {
  JsonState& s = State();
  if (s.path.empty()) {
    return nullptr;
  }
  if (s.sections.empty()) {
    s.sections.push_back(JsonSection{});  // rows printed before any header
  }
  return &s.sections.back();
}

}  // namespace bench_internal

// Parses the flags shared by the experiment binaries; unknown arguments are
// ignored so binaries can add their own. Safe to call with (0, nullptr).
inline void ParseBenchFlags(int argc, char** argv) {
  if (argc > 0 && argv != nullptr) {
    bench_internal::State().executable = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      bench_internal::State().path = argv[++i];
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      bench_internal::State().path = arg + 7;
    } else if (std::strcmp(arg, "--benchmark_out") == 0 && i + 1 < argc) {
      bench_internal::State().benchmark_out = argv[++i];
    } else if (std::strncmp(arg, "--benchmark_out=", 16) == 0) {
      bench_internal::State().benchmark_out = arg + 16;
    }
  }
  if (!bench_internal::State().path.empty()) {
    std::atexit(bench_internal::WriteJsonAtExit);
  }
  if (!bench_internal::State().benchmark_out.empty()) {
    std::atexit(bench_internal::WriteBenchmarkOutAtExit);
  }
}

// Records one google-benchmark-schema entry for --benchmark_out. `real_time`
// and `cpu_time` are in `time_unit`; extra metrics ride along as counters.
inline void ReportBenchmark(
    const std::string& name, int64_t iterations, double real_time,
    double cpu_time, const std::string& time_unit,
    std::initializer_list<std::pair<const char*, double>> counters = {}) {
  bench_internal::JsonState& s = bench_internal::State();
  if (s.benchmark_out.empty()) {
    return;
  }
  bench_internal::BenchmarkEntry entry;
  entry.name = name;
  entry.iterations = iterations;
  entry.real_time = real_time;
  entry.cpu_time = cpu_time;
  entry.time_unit = time_unit;
  for (const auto& [key, value] : counters) {
    entry.counters.emplace_back(key, value);
  }
  s.benchmarks.push_back(std::move(entry));
}

// Prints a header like:
//   === E2: double-check probability sweep ===
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!bench_internal::State().path.empty()) {
    bench_internal::JsonSection section;
    section.title = title;
    bench_internal::State().sections.push_back(std::move(section));
  }
}

// Fixed-width row printing: Row("%-10s %8.2f", ...).
inline void Row(const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fputs(buf, stdout);
  std::fputc('\n', stdout);
  if (auto* section = bench_internal::CurrentSection()) {
    section->rows.emplace_back(buf);
  }
}

inline void Note(const std::string& text) {
  std::printf("  note: %s\n", text.c_str());
  if (auto* section = bench_internal::CurrentSection()) {
    section->notes.push_back(text);
  }
}

// Parses --jobs=N / --jobs N (clamped to >= 1). Benches that honor it run
// independent simulations on worker threads but print and aggregate in a
// fixed order, so the output bytes never depend on the value.
inline int ParseJobsFlag(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      jobs = std::atoi(arg + 7);
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    }
  }
  return std::max(1, jobs);
}

// Runs fn(0..n-1) across `jobs` threads (worker w takes i ≡ w mod jobs).
// fn must write only to its own index's slot; results are then reduced by
// the caller in index order, keeping float sums and output deterministic.
inline void RunIndexedParallel(int n, int jobs,
                               const std::function<void(int)>& fn) {
  jobs = std::max(1, std::min(jobs, n));
  if (jobs == 1) {
    for (int i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    workers.emplace_back([&fn, n, jobs, w] {
      for (int i = w; i < n; i += jobs) {
        fn(i);
      }
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
}

}  // namespace sdr

#endif  // SDR_BENCH_BENCH_UTIL_H_
