// E3 — Detection of malicious slaves: double-checking vs auditing
// (paper Sections 3.3-3.4).
//
// Claims:
//   - Probabilistic double-checking catches a liar "red-handed" quickly
//     when it lies often, but a rarely-lying slave can evade it for a long
//     time (detection needs lie AND check to coincide: ~1/(p*q) reads).
//   - The audit mechanism guarantees that *any* wrong answer that reaches
//     a client is eventually detected — even a single lie — at the cost of
//     delay (the audit runs behind the version frontier).
//
// Sweep the slave's lie rate q and compare three configurations:
// double-check only, audit only, and both.
#include "bench/bench_util.h"
#include "src/core/cluster.h"

namespace sdr {
namespace {

struct Outcome {
  double caught_fraction = 0;
  double mean_reads_to_exclusion = 0;   // liar's reads served until exclusion
  double mean_seconds_to_exclusion = 0;
  double mean_wrong_accepted = 0;       // wrong answers clients accepted
};

struct TrialResult {
  bool caught = false;
  double reads = 0;
  double secs = 0;
  double wrong = 0;
};

Outcome Run(double q, double p, bool audit, uint64_t seed, int jobs) {
  const int kTrials = 8;
  // Each trial is a self-contained simulation; run them on worker threads
  // and reduce in trial order so the output is identical for any --jobs.
  std::vector<TrialResult> trials(kTrials);
  RunIndexedParallel(kTrials, jobs, [&](int trial) {
    ClusterConfig config;
    config.seed = seed * 977 + static_cast<uint64_t>(trial);
    config.num_masters = 1;
    config.slaves_per_master = 2;
    config.num_clients = 2;
    config.corpus.n_items = 100;
    config.params.scheme = SignatureScheme::kHmacSha256;
    config.params.double_check_probability = p;
    config.params.audit_enabled = audit;
    config.params.max_latency = 1 * kSecond;
    config.params.audit_slack = 200 * kMillisecond;
    config.client_mode = Client::LoadMode::kClosedLoop;
    config.client_think_time = 20 * kMillisecond;
    config.track_ground_truth = true;
    config.slave_behavior = [q](int index) {
      Slave::Behavior b;
      if (index == 0) {
        b.lie_probability = q;
      }
      return b;
    };
    // Light write traffic so the version frontier moves and the auditor
    // can finalize versions.
    config.client_write_fraction = 0.02;
    Cluster cluster(config);

    const SimTime kMaxRun = 600 * kSecond;
    const SimTime kStep = 5 * kSecond;
    SimTime caught_at = -1;
    while (cluster.sim().Now() < kMaxRun) {
      cluster.RunFor(kStep);
      if (cluster.master(0).IsExcluded(cluster.slave(0).id())) {
        caught_at = cluster.sim().Now();
        break;
      }
    }
    TrialResult& r = trials[trial];
    r.wrong = static_cast<double>(cluster.accepted_wrong());
    if (caught_at >= 0) {
      r.caught = true;
      r.reads = static_cast<double>(cluster.slave(0).metrics().reads_served);
      r.secs = static_cast<double>(caught_at) / kSecond;
    }
  });
  int caught = 0;
  double reads_sum = 0, secs_sum = 0, wrong_sum = 0;
  for (const TrialResult& r : trials) {
    wrong_sum += r.wrong;
    if (r.caught) {
      ++caught;
      reads_sum += r.reads;
      secs_sum += r.secs;
    }
  }
  Outcome o;
  o.caught_fraction = static_cast<double>(caught) / kTrials;
  if (caught > 0) {
    o.mean_reads_to_exclusion = reads_sum / caught;
    o.mean_seconds_to_exclusion = secs_sum / caught;
  }
  o.mean_wrong_accepted = wrong_sum / kTrials;
  return o;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  int jobs = sdr::ParseJobsFlag(argc, argv);
  using namespace sdr;
  PrintHeader("E3: detection latency vs lie rate (Sections 3.3-3.4)");
  Note("slave 0 lies with rate q; 8 trials x <=600 virtual seconds each");
  Note("mechanisms: dc-only (p=0.05), audit-only (p=0), both");

  Row("%-8s %-12s %8s %14s %12s %14s", "q", "mechanism", "caught",
      "readsToExcl", "secsToExcl", "wrongAccepted");
  for (double q : {0.01, 0.05, 0.2, 1.0}) {
    struct Config {
      const char* name;
      double p;
      bool audit;
    };
    for (const Config& c : {Config{"dc-only", 0.05, false},
                            Config{"audit-only", 0.0, true},
                            Config{"both", 0.05, true}}) {
      Outcome o = Run(q, c.p, c.audit, 11, jobs);
      Row("%-8.2f %-12s %7.0f%% %14.1f %12.1f %14.1f", q, c.name,
          100 * o.caught_fraction, o.mean_reads_to_exclusion,
          o.mean_seconds_to_exclusion, o.mean_wrong_accepted);
      char name[64];
      std::snprintf(name, sizeof(name), "E3_detection/q=%.2f/%s", q, c.name);
      // real_time = virtual seconds to exclusion: the detection latency the
      // paper's Sections 3.3-3.4 trade off against auditing cost.
      ReportBenchmark(name, /*iterations=*/8, o.mean_seconds_to_exclusion,
                      o.mean_seconds_to_exclusion, "s",
                      {{"caught_fraction", o.caught_fraction},
                       {"reads_to_exclusion", o.mean_reads_to_exclusion},
                       {"wrong_accepted", o.mean_wrong_accepted}});
    }
  }
  Note("shape: dc-only detection slows as q drops (needs lie*check");
  Note("coincidence); audit catches even rare lies, with higher delay and");
  Note("some wrong answers accepted before exclusion (delayed discovery).");
  return 0;
}
