// E6 — Freshness windows, keep-alive frequency, and client link quality
// (paper Sections 3, 3.2).
//
// Claims:
//   - max_latency bounds the inconsistency window; a result that was fresh
//     when the slave sent it can become stale in flight, in which case the
//     client "has to drop the answer and try the query again".
//   - "By carefully selecting the value for max_latency, and the frequency
//     masters send keep-alive packets, the probability of such events
//     occurring can be reduced."
//   - "clients with very slow or unreliable network connections may never
//     be able to get fresh-enough responses" — mitigated by client-chosen
//     max_latency (the relaxed variant).
#include "bench/bench_util.h"
#include "src/core/cluster.h"

namespace sdr {
namespace {

struct Sample {
  double stale_rate = 0;     // stale rejections / reads issued
  double accept_rate = 0;
  double retries_per_accept = 0;
};

Sample Run(SimTime max_latency, SimTime keepalive, SimTime rtt_half,
           uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 3;
  config.corpus.n_items = 50;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.0;
  config.params.audit_enabled = false;
  config.params.max_latency = max_latency;
  config.params.keepalive_period = keepalive;
  config.default_link = LinkModel{rtt_half, rtt_half / 2, 0.0};
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 100 * kMillisecond;
  config.track_ground_truth = false;
  Cluster cluster(config);
  cluster.RunFor(120 * kSecond);

  Sample s;
  uint64_t issued = 0, accepted = 0, stale = 0, retries = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    const ClientMetrics& m = cluster.client(c).metrics();
    issued += m.reads_issued;
    accepted += m.reads_accepted;
    stale += m.reads_rejected_stale;
    retries += m.retries;
  }
  uint64_t attempts = issued + retries;
  if (attempts > 0) {
    s.stale_rate = static_cast<double>(stale) / static_cast<double>(attempts);
  }
  if (issued > 0) {
    s.accept_rate =
        static_cast<double>(accepted) / static_cast<double>(issued);
  }
  if (accepted > 0) {
    s.retries_per_accept =
        static_cast<double>(retries) / static_cast<double>(accepted);
  }
  return s;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  using namespace sdr;
  PrintHeader("E6: freshness rejections vs max_latency, keep-alive, RTT");
  Note("3 closed-loop clients, 120 virtual seconds per cell");

  Row("%-12s %-12s %-10s %10s %10s %12s", "max_latency", "keepalive",
      "linkDelay", "staleRate", "accepted", "retries/acc");
  struct Cell {
    SimTime ml, ka, delay;
  };
  std::vector<Cell> cells = {
      // Sweep max_latency on a slow (300ms one-way) link: the bound binds.
      {500 * kMillisecond, 250 * kMillisecond, 300 * kMillisecond},
      {1 * kSecond, 250 * kMillisecond, 300 * kMillisecond},
      {2 * kSecond, 250 * kMillisecond, 300 * kMillisecond},
      {4 * kSecond, 250 * kMillisecond, 300 * kMillisecond},
      // Sweep keep-alive period at max_latency=1s on the slow link: token
      // age at the client ~ ka/2 + one-way delay + jitter.
      {1 * kSecond, 100 * kMillisecond, 300 * kMillisecond},
      {1 * kSecond, 500 * kMillisecond, 300 * kMillisecond},
      {1 * kSecond, 900 * kMillisecond, 300 * kMillisecond},
      // Sweep the client link delay at max_latency=1s (slow clients).
      {1 * kSecond, 250 * kMillisecond, 10 * kMillisecond},
      {1 * kSecond, 250 * kMillisecond, 100 * kMillisecond},
      {1 * kSecond, 250 * kMillisecond, 600 * kMillisecond},
  };
  for (const Cell& cell : cells) {
    Sample s = Run(cell.ml, cell.ka, cell.delay, 13);
    Row("%-12.2f %-12.2f %-10.3f %9.1f%% %9.1f%% %12.2f",
        static_cast<double>(cell.ml) / kSecond,
        static_cast<double>(cell.ka) / kSecond,
        static_cast<double>(cell.delay) / kSecond, 100 * s.stale_rate,
        100 * s.accept_rate, s.retries_per_accept);
  }

  // The relaxed variant: the slow client sets its own freshness bound.
  Note("relaxed variant: slow client (600ms one-way) chooses its own bound");
  {
    ClusterConfig config;
    config.seed = 14;
    config.num_masters = 1;
    config.slaves_per_master = 2;
    config.num_clients = 2;
    config.corpus.n_items = 50;
    config.params.scheme = SignatureScheme::kHmacSha256;
    config.params.double_check_probability = 0.0;
    config.params.audit_enabled = false;
    config.params.max_latency = 1 * kSecond;
    config.params.keepalive_period = 250 * kMillisecond;
    config.default_link = LinkModel{600 * kMillisecond, 100 * kMillisecond, 0.0};
    config.client_mode = Client::LoadMode::kClosedLoop;
    config.client_think_time = 100 * kMillisecond;
    config.track_ground_truth = false;
    config.tweak_client = [](int index, Client::Options& opts) {
      if (index == 1) {
        opts.max_latency_override = 5 * kSecond;
      }
    };
    Cluster cluster(config);
    cluster.RunFor(120 * kSecond);
    for (int c = 0; c < 2; ++c) {
      const ClientMetrics& m = cluster.client(c).metrics();
      Row("  client %d (%s): issued=%llu accepted=%llu stale=%llu", c,
          c == 0 ? "strict 1s" : "relaxed 5s",
          static_cast<unsigned long long>(m.reads_issued),
          static_cast<unsigned long long>(m.reads_accepted),
          static_cast<unsigned long long>(m.reads_rejected_stale));
    }
  }
  Note("shape: stale rate falls as max_latency grows and keep-alives");
  Note("(sparse keep-alives can also make the slave itself decline, which");
  Note("shows as lost accepts rather than stale rejections);");
  Note("tighten; slow links push it up; per-client relaxation rescues");
  Note("clients the global bound would starve.");
  return 0;
}
