// E2 — Double-check probability sweep (paper Section 3.3).
//
// Claim: the double-check probability "should be small enough so it does
// not excessively increase the workload on the masters, but large enough
// so it guarantees that a malicious slave is caught red-handed quickly."
// This bench measures both sides of that trade-off as p sweeps 0 -> 1:
//   - the master's share of total query work (honest run), and
//   - how many reads a slave lying on every answer survives before it is
//     caught by a double-check (malicious run; audit disabled to isolate
//     the mechanism).
#include "bench/bench_util.h"
#include "src/core/cluster.h"

namespace sdr {
namespace {

struct Sample {
  double master_share = 0;
  uint64_t dc_per_100_reads = 0;
  double mean_reads_to_catch = 0;
  double caught_fraction = 0;
};

Sample RunAt(double p, uint64_t seed) {
  Sample s;
  // --- Honest run: master load share. ---
  {
    ClusterConfig config;
    config.seed = seed;
    config.num_masters = 1;
    config.slaves_per_master = 2;
    config.num_clients = 4;
    config.corpus.n_items = 100;
    config.params.scheme = SignatureScheme::kHmacSha256;
    config.params.double_check_probability = p;
    config.params.audit_enabled = false;
    config.client_mode = Client::LoadMode::kClosedLoop;
    config.client_think_time = 50 * kMillisecond;
    config.track_ground_truth = false;
    Cluster cluster(config);
    cluster.RunFor(60 * kSecond);
    auto t = cluster.ComputeTotals();
    uint64_t total = t.master_work_units + t.slave_work_units;
    s.master_share = total == 0 ? 0
                                : static_cast<double>(t.master_work_units) /
                                      static_cast<double>(total);
    s.dc_per_100_reads =
        t.reads_accepted == 0 ? 0 : 100 * t.double_checks_sent / t.reads_accepted;
  }
  // --- Malicious runs: reads survived by an always-lying slave. ---
  {
    const int kTrials = 10;
    int caught = 0;
    double total_reads = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      ClusterConfig config;
      config.seed = seed * 1000 + static_cast<uint64_t>(trial);
      config.num_masters = 1;
      config.slaves_per_master = 2;
      config.num_clients = 2;
      config.corpus.n_items = 100;
      config.params.scheme = SignatureScheme::kHmacSha256;
      config.params.double_check_probability = p;
      config.params.audit_enabled = false;  // isolate double-checking
      config.client_mode = Client::LoadMode::kClosedLoop;
      config.client_think_time = 20 * kMillisecond;
      config.track_ground_truth = false;
      config.slave_behavior = [](int index) {
        Slave::Behavior b;
        if (index == 0) {
          b.lie_probability = 1.0;
        }
        return b;
      };
      Cluster cluster(config);
      cluster.RunFor(180 * kSecond);
      const SlaveMetrics& liar = cluster.slave(0).metrics();
      if (cluster.master(0).IsExcluded(cluster.slave(0).id())) {
        ++caught;
        total_reads += static_cast<double>(liar.reads_served);
      }
    }
    s.caught_fraction = static_cast<double>(caught) / kTrials;
    s.mean_reads_to_catch = caught == 0 ? 0 : total_reads / caught;
  }
  return s;
}

}  // namespace
}  // namespace sdr

int main(int argc, char** argv) {
  sdr::ParseBenchFlags(argc, argv);
  using namespace sdr;
  PrintHeader("E2: double-check probability trade-off (Section 3.3)");
  Note("honest run: 4 clients/60s; malicious run: always-lying slave,");
  Note("audit disabled, 10 trials x 180s; expectation: reads-to-catch ~ 1/p");

  Row("%-6s %14s %14s %18s %10s", "p", "masterShare", "dc/100reads",
      "readsToCatch", "caught");
  for (double p : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.0}) {
    Sample s = RunAt(p, 7);
    Row("%-6.2f %13.1f%% %14llu %18.1f %9.0f%%", p, 100 * s.master_share,
        static_cast<unsigned long long>(s.dc_per_100_reads),
        s.mean_reads_to_catch, 100 * s.caught_fraction);
  }
  Note("shape: master load grows ~linearly with p; detection speed grows");
  Note("with p (geometric with mean ~1/p reads); p=0 never catches anyone.");
  return 0;
}
