// Observability subsystem tests: histogram bucket math, causal-id
// propagation through a live cluster (client -> slave -> auditor -> master
// verdict), binary and Chrome-JSON exporters, the sdrtrace query layer, and
// the determinism gate — two same-seed runs must export byte-identical
// traces.
#include <gtest/gtest.h>

#include "src/chaos/runner.h"
#include "src/core/cluster.h"
#include "src/trace/export.h"
#include "src/trace/histogram.h"
#include "src/trace/query.h"
#include "src/trace/trace.h"

namespace sdr {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(Histogram, SmallValuesGetExactBuckets) {
  // Below 2^kSubBits every value is its own bucket: zero error.
  for (uint64_t v = 0; v < LatencyHistogram::kSubCount; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v);
  }
}

TEST(Histogram, BucketBoundariesAtPowersOfTwo) {
  // Each power of two starts a band of kSubCount sub-buckets, and lower
  // bounds are monotonically increasing with no gaps or overlaps.
  size_t prev = LatencyHistogram::BucketIndex(LatencyHistogram::kSubCount - 1);
  for (uint64_t v :
       {uint64_t{32}, uint64_t{64}, uint64_t{128}, uint64_t{1} << 20}) {
    size_t index = LatencyHistogram::BucketIndex(v);
    EXPECT_GT(index, prev);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(index), v)
        << "power of two must begin its bucket, v=" << v;
    prev = index;
  }
  for (size_t i = 1; i < 400; ++i) {
    EXPECT_GT(LatencyHistogram::BucketLowerBound(i),
              LatencyHistogram::BucketLowerBound(i - 1));
  }
}

TEST(Histogram, RelativeErrorIsBounded) {
  // Any value's bucket lower bound is within 1/kSubCount of the value.
  for (uint64_t v = 1; v < (1u << 16); v = v * 17 / 16 + 1) {
    size_t index = LatencyHistogram::BucketIndex(v);
    uint64_t lo = LatencyHistogram::BucketLowerBound(index);
    uint64_t hi = LatencyHistogram::BucketLowerBound(index + 1);
    EXPECT_LE(lo, v);
    EXPECT_LT(v, hi);
    EXPECT_LE(static_cast<double>(hi - lo),
              static_cast<double>(v) / LatencyHistogram::kSubCount + 1.0);
  }
}

TEST(Histogram, RecordAndQuantiles) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  // Nearest-rank on a log-bucketed histogram: within the ~3.1% bucket
  // width of the exact quantile.
  EXPECT_NEAR(static_cast<double>(h.Median()), 500.0, 500.0 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.P99()), 990.0, 990.0 * 0.04);
  EXPECT_EQ(h.Quantile(0.0), 1);
  // The top quantile reports its bucket's lower bound, clamped to max.
  EXPECT_LE(h.Quantile(1.0), h.max());
  EXPECT_GE(static_cast<double>(h.Quantile(1.0)),
            static_cast<double>(h.max()) * 0.96);
}

TEST(Histogram, NegativeValuesClampToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, MergeMatchesRecordingEverythingIntoOne) {
  LatencyHistogram a, b, all;
  for (int64_t v = 1; v < 5000; v += 7) {
    (v % 2 == 0 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.buckets(), all.buckets());
  EXPECT_EQ(a.Median(), all.Median());
  EXPECT_EQ(a.P99(), all.P99());
}

// ---------------------------------------------------------------------------
// Cluster propagation
// ---------------------------------------------------------------------------

ClusterConfig LyingClusterConfig(uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 2;
  config.corpus.n_items = 50;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.1;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 20 * kMillisecond;
  config.client_write_fraction = 0.02;
  config.track_ground_truth = false;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 0.5;
    }
    return b;
  };
  config.trace.enabled = true;
  return config;
}

// Runs until the liar is excluded (or the deadline passes) and returns the
// decoded trace.
TraceData RunLyingCluster(uint64_t seed, bool* excluded) {
  Cluster cluster(LyingClusterConfig(seed));
  NodeId liar = cluster.slave(0).id();
  for (int step = 0; step < 60; ++step) {
    cluster.RunFor(1 * kSecond);
    if (cluster.ExcludedByAnyMaster(liar)) {
      break;
    }
  }
  *excluded = cluster.ExcludedByAnyMaster(liar);
  EXPECT_NE(cluster.trace(), nullptr);
  return Snapshot(*cluster.trace());
}

TEST(TracePropagation, LieChainReachesExclusionAcrossRoles) {
  bool excluded = false;
  TraceData data = RunLyingCluster(101, &excluded);
  ASSERT_TRUE(excluded) << "liar was never excluded within the deadline";

  // Find the exclusion verdict and follow its evidence chain.
  TraceQuery query(data);
  auto verdicts = query.Verdicts();
  ASSERT_FALSE(verdicts.empty());
  const auto& v = verdicts.front();
  EXPECT_NE(v.id, kNoTrace) << "verdict lost its causal id";

  // The chain must span the whole protocol: the client that issued the
  // read, the slave that lied, and the trusted server that caught it.
  std::vector<TraceEvent> chain = query.Chain(v.id);
  ASSERT_GE(chain.size(), 4u);
  bool saw_client = false, saw_slave = false, saw_trusted = false;
  bool saw_exclude = false;
  for (const TraceEvent& ev : chain) {
    saw_client |= ev.role == TraceRole::kClient;
    saw_slave |= ev.role == TraceRole::kSlave;
    saw_trusted |=
        ev.role == TraceRole::kMaster || ev.role == TraceRole::kAuditor;
    saw_exclude |= data.Name(ev.name) == "master.exclude";
    // Events in a chain are emitted in nondecreasing sim-time order.
    EXPECT_GE(ev.time, chain.front().time);
  }
  EXPECT_TRUE(saw_client);
  EXPECT_TRUE(saw_slave);
  EXPECT_TRUE(saw_trusted);
  EXPECT_TRUE(saw_exclude);

  // The minted id encodes the issuing client: top 32 bits are its node id.
  uint32_t minting_node = static_cast<uint32_t>(v.id >> 32);
  auto it = data.nodes.find(minting_node);
  ASSERT_NE(it, data.nodes.end());
  EXPECT_EQ(it->second.role, TraceRole::kClient);
}

TEST(TracePropagation, HistogramsPopulatedByLiveRun) {
  bool excluded = false;
  TraceData data = RunLyingCluster(101, &excluded);
  auto merged = data.MergedHistograms();
  EXPECT_GT(merged["read_rtt_us"].count(), 0u);
  EXPECT_GT(merged["detection_latency_us"].count(), 0u);
  // RTT of a 20ms-think closed loop over 5ms links: plausibly bounded.
  EXPECT_GT(merged["read_rtt_us"].Median(), 0);
  EXPECT_LT(merged["read_rtt_us"].Median(), 1000000);
}

TEST(TracePropagation, TracingOffRecordsNothingAndSinkIsNull) {
  ClusterConfig config = LyingClusterConfig(101);
  config.trace.enabled = false;
  Cluster cluster(config);
  cluster.RunFor(2 * kSecond);
  EXPECT_EQ(cluster.trace(), nullptr);
  EXPECT_EQ(cluster.sim().trace(), nullptr);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(TraceExport, BinaryRoundTripIsLossless) {
  bool excluded = false;
  TraceData data = RunLyingCluster(101, &excluded);
  Bytes encoded = EncodeTrace(data);
  auto decoded = DecodeTrace(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();

  EXPECT_EQ(decoded->names, data.names);
  ASSERT_EQ(decoded->events.size(), data.events.size());
  for (size_t i = 0; i < data.events.size(); ++i) {
    EXPECT_EQ(decoded->events[i].time, data.events[i].time);
    EXPECT_EQ(decoded->events[i].trace_id, data.events[i].trace_id);
    EXPECT_EQ(decoded->events[i].value, data.events[i].value);
    EXPECT_EQ(decoded->events[i].node, data.events[i].node);
    EXPECT_EQ(decoded->events[i].name, data.events[i].name);
    EXPECT_EQ(decoded->events[i].type, data.events[i].type);
    EXPECT_EQ(decoded->events[i].role, data.events[i].role);
  }
  ASSERT_EQ(decoded->nodes.size(), data.nodes.size());
  for (const auto& [node, info] : data.nodes) {
    ASSERT_TRUE(decoded->nodes.count(node));
    EXPECT_EQ(decoded->nodes.at(node).role, info.role);
    EXPECT_EQ(decoded->nodes.at(node).label, info.label);
  }
  ASSERT_EQ(decoded->histograms.size(), data.histograms.size());
  for (size_t i = 0; i < data.histograms.size(); ++i) {
    EXPECT_EQ(decoded->histograms[i].name, data.histograms[i].name);
    EXPECT_EQ(decoded->histograms[i].hist.count(),
              data.histograms[i].hist.count());
    EXPECT_EQ(decoded->histograms[i].hist.buckets(),
              data.histograms[i].hist.buckets());
    EXPECT_EQ(decoded->histograms[i].hist.min(), data.histograms[i].hist.min());
    EXPECT_EQ(decoded->histograms[i].hist.max(), data.histograms[i].hist.max());
  }
  EXPECT_EQ(decoded->dropped, data.dropped);

  // And the re-encoding is byte-identical.
  EXPECT_EQ(EncodeTrace(*decoded), encoded);
}

TEST(TraceExport, DecodeRejectsCorruptInput) {
  EXPECT_FALSE(DecodeTrace(Bytes{}).ok());
  EXPECT_FALSE(DecodeTrace(Bytes{1, 2, 3, 4, 5, 6, 7, 8}).ok());
  bool excluded = false;
  Bytes good = EncodeTrace(RunLyingCluster(101, &excluded));
  // Truncations must be rejected, never crash.
  for (size_t cut : {size_t{0}, size_t{5}, good.size() / 2, good.size() - 1}) {
    Bytes truncated(good.begin(), good.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DecodeTrace(truncated).ok()) << "cut=" << cut;
  }
}

TEST(TraceExport, ChromeJsonGolden) {
  // A hand-built sink with one span, one instant, and one counter must
  // serialize to exactly this document (byte-stable contract).
  Simulator sim(1);
  TraceSink sink(&sim, TraceSink::Options{16, false});
  sink.RegisterNode(1, TraceRole::kClient, "client 0");
  sim.ScheduleAt(10, [&] {
    sink.SpanBegin(TraceRole::kClient, 1, "read", MintTraceId(1, 7));
  });
  sim.ScheduleAt(25, [&] {
    sink.SpanEnd(TraceRole::kClient, 1, "read", MintTraceId(1, 7), 1);
    sink.Instant(TraceRole::kClient, 1, "note");
    sink.Counter(TraceRole::kClient, 1, "inflight", 3);
  });
  sim.RunUntil(100);

  const char* kGolden =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"args\":{\"name\":\"client 0\"},\"name\":\"process_name\","
      "\"ph\":\"M\",\"pid\":1,\"tid\":1},"
      "{\"args\":{\"trace_id\":\"0x100000007\"},\"cat\":\"client\","
      "\"name\":\"read\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":10},"
      "{\"args\":{\"trace_id\":\"0x100000007\",\"value\":1},"
      "\"cat\":\"client\",\"name\":\"read\",\"ph\":\"E\",\"pid\":1,"
      "\"tid\":1,\"ts\":25},"
      "{\"args\":{},\"cat\":\"client\",\"name\":\"note\",\"ph\":\"i\","
      "\"pid\":1,\"s\":\"t\",\"tid\":1,\"ts\":25},"
      "{\"args\":{\"value\":3},\"cat\":\"client\",\"name\":\"inflight\","
      "\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":25}]}";
  EXPECT_EQ(ChromeTraceJson(sink).Dump(), kGolden);
}

TEST(TraceExport, RingDropsOldestAndCountsThem) {
  Simulator sim(1);
  TraceSink sink(&sim, TraceSink::Options{4, false});
  for (int i = 0; i < 10; ++i) {
    sink.Instant(TraceRole::kSim, 0, "tick", kNoTrace, i);
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total_emitted(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  std::vector<TraceEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first unwrap: the surviving events are 6, 7, 8, 9.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].value, static_cast<int64_t>(6 + i));
  }
}

// ---------------------------------------------------------------------------
// Query layer (the sdrtrace CLI's engine)
// ---------------------------------------------------------------------------

TEST(TraceQueryTest, FollowRoundTripsThroughTheBinaryFormat) {
  bool excluded = false;
  TraceData live = RunLyingCluster(101, &excluded);
  ASSERT_TRUE(excluded);

  auto decoded = DecodeTrace(EncodeTrace(live));
  ASSERT_TRUE(decoded.ok());

  TraceQuery live_query(live);
  TraceQuery file_query(*decoded);
  auto verdicts = live_query.Verdicts();
  ASSERT_FALSE(verdicts.empty());
  TraceId id = verdicts.front().id;
  ASSERT_NE(id, kNoTrace);

  // --follow on the decoded file reproduces the live chain exactly.
  EXPECT_EQ(file_query.FormatChain(id), live_query.FormatChain(id));
  EXPECT_FALSE(live_query.FormatChain(id).empty());
  EXPECT_EQ(file_query.FormatVerdicts(), live_query.FormatVerdicts());
  EXPECT_EQ(file_query.FormatSlowest(5), live_query.FormatSlowest(5));
}

TEST(TraceQueryTest, SlowestReadsAreSortedAndComplete) {
  bool excluded = false;
  TraceData data = RunLyingCluster(101, &excluded);
  TraceQuery query(data);
  auto slowest = query.SlowestReads(10);
  ASSERT_FALSE(slowest.empty());
  for (size_t i = 1; i < slowest.size(); ++i) {
    EXPECT_GE(slowest[i - 1].duration, slowest[i].duration);
  }
  for (const auto& r : slowest) {
    EXPECT_NE(r.id, kNoTrace);
    EXPECT_GE(r.duration, 0);
  }
}

TEST(TraceQueryTest, ParseTraceIdFormats) {
  TraceId id = kNoTrace;
  EXPECT_TRUE(ParseTraceId("42", &id));
  EXPECT_EQ(id, 42u);
  EXPECT_TRUE(ParseTraceId("0x900000002", &id));
  EXPECT_EQ(id, 0x900000002ull);
  EXPECT_FALSE(ParseTraceId("", &id));
  EXPECT_FALSE(ParseTraceId("nonsense", &id));
}

// ---------------------------------------------------------------------------
// Determinism gate
// ---------------------------------------------------------------------------

TEST(TraceDeterminism, SameSeedRunsExportByteIdenticalTraces) {
  // The repo-wide determinism contract extended to observability: two
  // same-seed runs must produce byte-identical binary traces and Chrome
  // JSON. Any unordered-container iteration or ambient-time leak in the
  // trace path shows up here.
  bool excluded_a = false, excluded_b = false;
  TraceData a = RunLyingCluster(77, &excluded_a);
  TraceData b = RunLyingCluster(77, &excluded_b);
  EXPECT_EQ(excluded_a, excluded_b);
  EXPECT_EQ(EncodeTrace(a), EncodeTrace(b));
  EXPECT_EQ(ChromeTraceJson(a).Dump(), ChromeTraceJson(b).Dump());
}

TEST(TraceDeterminism, ChaosScenarioTracesAreByteIdenticalToo) {
  // Fault injection runs through the same deterministic machinery; chaos
  // instants land at scheduled virtual times, so the gate holds under
  // partitions and crashes as well.
  auto run = [] {
    ClusterConfig config = LyingClusterConfig(31);
    auto parsed = ParseScenario(
        "at 2s partition slave:1 master:*; at 4s heal all");
    EXPECT_TRUE(parsed.ok());
    Cluster cluster(config);
    ChaosController controller(&cluster, parsed.value(), {},
                               ChaosControllerOptions{250 * kMillisecond});
    controller.Install();
    cluster.RunFor(6 * kSecond);
    controller.Finish();
    return EncodeTrace(*cluster.trace());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sdr
