// Tests for the document store, query language, executor, and op log.
#include <gtest/gtest.h>

#include "src/store/document_store.h"
#include "src/store/executor.h"
#include "src/store/oplog.h"
#include "src/store/query.h"

namespace sdr {
namespace {

DocumentStore MakeCatalog() {
  DocumentStore s;
  s.Apply(WriteOp::Put("item/001", "red widget"));
  s.Apply(WriteOp::Put("item/002", "blue widget"));
  s.Apply(WriteOp::Put("item/003", "green gadget"));
  s.Apply(WriteOp::Put("price/001", "100"));
  s.Apply(WriteOp::Put("price/002", "250"));
  s.Apply(WriteOp::Put("price/003", "75"));
  return s;
}

TEST(DocumentStoreTest, PutGetDeleteAppend) {
  DocumentStore s;
  EXPECT_TRUE(s.Apply(WriteOp::Put("k", "v")));
  EXPECT_EQ(s.Get("k"), "v");
  EXPECT_TRUE(s.Apply(WriteOp::Append("k", "2")));
  EXPECT_EQ(s.Get("k"), "v2");
  EXPECT_TRUE(s.Apply(WriteOp::Delete("k")));
  EXPECT_FALSE(s.Get("k").has_value());
  EXPECT_FALSE(s.Apply(WriteOp::Delete("k")));  // delete of missing = no-op
}

TEST(DocumentStoreTest, AppendCreatesMissingKey) {
  DocumentStore s;
  s.Apply(WriteOp::Append("log", "a"));
  EXPECT_EQ(s.Get("log"), "a");
}

TEST(DocumentStoreTest, FingerprintTracksContent) {
  DocumentStore a = MakeCatalog();
  DocumentStore b = MakeCatalog();
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.Apply(WriteOp::Put("item/004", "new"));
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

TEST(DocumentStoreTest, FingerprintInsensitiveToInsertionOrder) {
  DocumentStore a, b;
  a.Apply(WriteOp::Put("x", "1"));
  a.Apply(WriteOp::Put("y", "2"));
  b.Apply(WriteOp::Put("y", "2"));
  b.Apply(WriteOp::Put("x", "1"));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(WriteOpTest, BatchSerdeRoundTrip) {
  WriteBatch batch = {WriteOp::Put("a", "1"), WriteOp::Delete("b"),
                      WriteOp::Append("c", "x")};
  Writer w;
  EncodeBatch(w, batch);
  Reader r(w.bytes());
  WriteBatch decoded = DecodeBatch(r);
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(decoded, batch);
}

TEST(QueryTest, TextRoundTrip) {
  for (const char* text :
       {"GET item/001", "SCAN item/ item0 10", "SCAN * *",
        "GREP widget item/ item0", "GREP gadget * *", "COUNT price/ price0",
        "SUM * *", "MIN price/ *", "MAX * price0", "AVG price/ price0"}) {
    auto q = Query::Parse(text);
    ASSERT_TRUE(q.ok()) << text;
    auto q2 = Query::Parse(q->ToText());
    ASSERT_TRUE(q2.ok()) << q->ToText();
    EXPECT_EQ(*q, *q2) << text;
  }
}

TEST(QueryTest, BinaryRoundTrip) {
  Query q = Query::Grep("wid.*", "item/", "item0");
  auto decoded = Query::Decode(q.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, q);
}

TEST(QueryTest, ParseRejectsMalformed) {
  for (const char* text :
       {"", "GET", "GET a b", "SCAN a", "SCAN a b c d", "SCAN a b xyz",
        "FOO bar", "COUNT a b c"}) {
    EXPECT_FALSE(Query::Parse(text).ok()) << text;
  }
}

TEST(QueryTest, DecodeRejectsCorrupt) {
  Bytes junk = {0xff, 0x01};
  EXPECT_FALSE(Query::Decode(junk).ok());
}

TEST(ExecutorTest, GetFoundAndMissing) {
  DocumentStore s = MakeCatalog();
  QueryExecutor exec;
  auto hit = exec.Execute(s, Query::Get("item/002"));
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit->result.rows.size(), 1u);
  EXPECT_EQ(hit->result.rows[0].second, "blue widget");
  EXPECT_EQ(hit->cost, 1u);

  auto miss = exec.Execute(s, Query::Get("item/999"));
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->result.rows.empty());
}

TEST(ExecutorTest, ScanRangeAndLimit) {
  DocumentStore s = MakeCatalog();
  QueryExecutor exec;
  auto all = exec.Execute(s, Query::Scan("item/", "item0"));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->result.rows.size(), 3u);
  EXPECT_EQ(all->result.rows[0].first, "item/001");

  auto limited = exec.Execute(s, Query::Scan("item/", "item0", 2));
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->result.rows.size(), 2u);

  auto unbounded = exec.Execute(s, Query::Scan("", ""));
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ(unbounded->result.rows.size(), 6u);
}

TEST(ExecutorTest, GrepMatchesValues) {
  DocumentStore s = MakeCatalog();
  QueryExecutor exec;
  auto widgets = exec.Execute(s, Query::Grep("widget"));
  ASSERT_TRUE(widgets.ok());
  EXPECT_EQ(widgets->result.rows.size(), 2u);

  auto anchored = exec.Execute(s, Query::Grep("^red"));
  ASSERT_TRUE(anchored.ok());
  EXPECT_EQ(anchored->result.rows.size(), 1u);
}

TEST(ExecutorTest, GrepBadRegexFails) {
  DocumentStore s = MakeCatalog();
  QueryExecutor exec;
  EXPECT_FALSE(exec.Execute(s, Query::Grep("(unclosed")).ok());
}

TEST(ExecutorTest, RegexCacheHits) {
  DocumentStore s = MakeCatalog();
  QueryExecutor exec(/*cache_regex=*/true);
  // A pattern with a metacharacter goes through the regex engine (and its
  // cache); literal patterns take the substring fast path and never touch it.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(exec.Execute(s, Query::Grep("widge.")).ok());
  }
  EXPECT_EQ(exec.regex_cache_hits(), 4u);
}

TEST(ExecutorTest, LiteralGrepSkipsRegexCacheAndMatchesRegexPath) {
  DocumentStore s = MakeCatalog();
  QueryExecutor exec(/*cache_regex=*/true);
  auto lit = exec.Execute(s, Query::Grep("widget"));
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ(exec.regex_cache_hits(), 0u);
  // "(widget)" is semantically the same search but is not literal, so it
  // exercises the regex engine; both paths must return identical rows.
  auto rex = exec.Execute(s, Query::Grep("(widget)"));
  ASSERT_TRUE(rex.ok());
  EXPECT_EQ(lit->result.rows, rex->result.rows);
  EXPECT_EQ(lit->cost, rex->cost);
}

TEST(ExecutorTest, Aggregates) {
  DocumentStore s = MakeCatalog();
  QueryExecutor exec;
  auto count = exec.Execute(s, Query::Aggregate(QueryKind::kCount, "price/", "price0"));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->result.scalar, 3);

  auto sum = exec.Execute(s, Query::Aggregate(QueryKind::kSum, "price/", "price0"));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->result.scalar, 425);

  auto mn = exec.Execute(s, Query::Aggregate(QueryKind::kMin, "price/", "price0"));
  ASSERT_TRUE(mn.ok());
  EXPECT_EQ(mn->result.scalar, 75);

  auto mx = exec.Execute(s, Query::Aggregate(QueryKind::kMax, "price/", "price0"));
  ASSERT_TRUE(mx.ok());
  EXPECT_EQ(mx->result.scalar, 250);

  auto avg = exec.Execute(s, Query::Aggregate(QueryKind::kAvg, "price/", "price0"));
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg->result.scalar, 1000 * 425 / 3);
}

TEST(ExecutorTest, AggregatesSkipNonNumeric) {
  DocumentStore s = MakeCatalog();  // item/* values are non-numeric
  QueryExecutor exec;
  auto sum = exec.Execute(s, Query::Aggregate(QueryKind::kSum));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->result.scalar, 425);  // only the three prices

  auto count = exec.Execute(s, Query::Aggregate(QueryKind::kCount));
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->result.scalar, 6);  // COUNT counts all rows
}

TEST(ExecutorTest, EmptyAggregateFlagged) {
  DocumentStore s;
  QueryExecutor exec;
  auto mn = exec.Execute(s, Query::Aggregate(QueryKind::kMin));
  ASSERT_TRUE(mn.ok());
  EXPECT_TRUE(mn->result.empty_aggregate);
}

TEST(ExecutorTest, CostModelShape) {
  DocumentStore s;
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%03d", i);
    s.Apply(WriteOp::Put(key, std::string(128, 'x')));
  }
  QueryExecutor exec;
  auto get = exec.Execute(s, Query::Get("k050"));
  auto scan = exec.Execute(s, Query::Scan("", ""));
  auto grep = exec.Execute(s, Query::Grep("yyy"));
  ASSERT_TRUE(get.ok());
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(grep.ok());
  EXPECT_EQ(get->cost, 1u);
  EXPECT_EQ(scan->cost, 100u);
  // GREP charges for value size: 1 + 128/64 = 3 per row.
  EXPECT_EQ(grep->cost, 300u);
}

TEST(ExecutorTest, ResultEncodingIsCanonical) {
  DocumentStore a = MakeCatalog();
  DocumentStore b = MakeCatalog();
  QueryExecutor e1, e2;
  Query q = Query::Scan("", "");
  auto r1 = e1.Execute(a, q);
  auto r2 = e2.Execute(b, q);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->result.Encode(), r2->result.Encode());
  EXPECT_EQ(r1->result.Sha1Digest(), r2->result.Sha1Digest());
}

TEST(ExecutorTest, ResultSerdeRoundTrip) {
  DocumentStore s = MakeCatalog();
  QueryExecutor exec;
  auto r = exec.Execute(s, Query::Scan("", ""));
  ASSERT_TRUE(r.ok());
  auto decoded = QueryResult::Decode(r->result.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, r->result);
}

TEST(OpLogTest, HeadTracksAppendedBatches) {
  OpLog log;
  log.Append(1, {WriteOp::Put("a", "1")});
  log.Append(2, {WriteOp::Put("b", "2")});
  EXPECT_EQ(log.head_version(), 2u);
  EXPECT_EQ(log.head().Get("a"), "1");
  EXPECT_EQ(log.head().Get("b"), "2");
}

TEST(OpLogTest, MaterializeHistoricalVersions) {
  OpLog log(/*snapshot_interval=*/4);
  for (uint64_t v = 1; v <= 10; ++v) {
    log.Append(v, {WriteOp::Put("k", std::to_string(v))});
  }
  for (uint64_t v = 1; v <= 10; ++v) {
    auto s = log.MaterializeAt(v);
    ASSERT_TRUE(s.ok()) << v;
    EXPECT_EQ(s->Get("k"), std::to_string(v));
  }
  auto v0 = log.MaterializeAt(0);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(v0->size(), 0u);
}

TEST(OpLogTest, MaterializeBeyondHeadFails) {
  OpLog log;
  EXPECT_FALSE(log.MaterializeAt(1).ok());
}

TEST(OpLogTest, BaseSnapshotIsVersionZero) {
  DocumentStore base;
  base.Apply(WriteOp::Put("seed", "content"));
  OpLog log;
  log.SetBaseSnapshot(base);
  auto v0 = log.MaterializeAt(0);
  ASSERT_TRUE(v0.ok());
  EXPECT_EQ(v0->Get("seed"), "content");
  log.Append(1, {WriteOp::Delete("seed")});
  auto v1 = log.MaterializeAt(1);
  ASSERT_TRUE(v1.ok());
  EXPECT_FALSE(v1->Get("seed").has_value());
}

TEST(OpLogTest, PruneKeepsRequestedVersionReachable) {
  OpLog log(/*snapshot_interval=*/4);
  for (uint64_t v = 1; v <= 12; ++v) {
    log.Append(v, {WriteOp::Put("k", std::to_string(v))});
  }
  log.PruneBelow(8);
  auto s8 = log.MaterializeAt(8);
  ASSERT_TRUE(s8.ok());
  EXPECT_EQ(s8->Get("k"), "8");
  EXPECT_FALSE(log.MaterializeAt(3).ok());
}

TEST(OpLogTest, PruneKeepsEveryVersionAboveFloorReachable) {
  // Pruning at a version between snapshots must keep the batches needed to
  // replay from the retained snapshot: an auditor that finalizes version 3
  // (snapshots every 16) still audits late pledges at versions 4..head.
  OpLog log(/*snapshot_interval=*/16);
  for (uint64_t v = 1; v <= 6; ++v) {
    log.Append(v, {WriteOp::Put("k", std::to_string(v))});
  }
  log.PruneBelow(3);
  for (uint64_t v = 3; v <= 6; ++v) {
    auto s = log.MaterializeAt(v);
    ASSERT_TRUE(s.ok()) << v;
    EXPECT_EQ(s->Get("k"), std::to_string(v));
  }
}

TEST(OpLogTest, SnapshotIntervalBoundsReplay) {
  OpLog log(/*snapshot_interval=*/2);
  for (uint64_t v = 1; v <= 9; ++v) {
    log.Append(v, {WriteOp::Put("k" + std::to_string(v), "v")});
  }
  // Snapshots at 0, 2, 4, 6, 8.
  EXPECT_EQ(log.retained_snapshots(), 5u);
}

}  // namespace
}  // namespace sdr
