#include <gtest/gtest.h>

#include "src/core/service_queue.h"
#include "src/runtime/sim_env.h"

namespace sdr {
namespace {

TEST(ServiceQueueTest, JobsCompleteInFifoOrderWithQueueing) {
  Simulator sim(1);
  SimEnv env(&sim, nullptr, 1);
  ServiceQueue q(&env, 1.0);
  std::vector<int> done;
  q.Enqueue(100, [&] { done.push_back(1); });
  q.Enqueue(50, [&] { done.push_back(2); });
  q.Enqueue(10, [&] { done.push_back(3); });
  EXPECT_EQ(q.depth(), 3u);
  sim.RunUntil(99);
  EXPECT_TRUE(done.empty());
  sim.RunUntil(100);
  EXPECT_EQ(done, (std::vector<int>{1}));
  sim.RunUntil(150);
  EXPECT_EQ(done, (std::vector<int>{1, 2}));
  sim.RunUntil(160);
  EXPECT_EQ(done, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.jobs_completed(), 3u);
}

TEST(ServiceQueueTest, IdleGapsDoNotAccumulate) {
  Simulator sim(1);
  SimEnv env(&sim, nullptr, 1);
  ServiceQueue q(&env, 1.0);
  int done = 0;
  q.Enqueue(10, [&] { ++done; });
  sim.RunUntil(1000);  // long idle
  q.Enqueue(10, [&] { ++done; });
  sim.RunUntil(1010);
  EXPECT_EQ(done, 2);
  EXPECT_EQ(q.busy_time(), 20);
}

TEST(ServiceQueueTest, SpeedScalesServiceTime) {
  Simulator sim(1);
  SimEnv env(&sim, nullptr, 1);
  ServiceQueue fast(&env, 4.0);
  ServiceQueue slow(&env, 0.5);
  int fast_done = 0, slow_done = 0;
  fast.Enqueue(100, [&] { ++fast_done; });
  slow.Enqueue(100, [&] { ++slow_done; });
  sim.RunUntil(25);
  EXPECT_EQ(fast_done, 1);
  EXPECT_EQ(slow_done, 0);
  sim.RunUntil(200);
  EXPECT_EQ(slow_done, 1);
}

TEST(ServiceQueueTest, UtilizationTracksBusyFraction) {
  Simulator sim(1);
  SimEnv env(&sim, nullptr, 1);
  ServiceQueue q(&env, 1.0);
  q.Enqueue(250, [] {});
  sim.RunUntil(1000);
  EXPECT_NEAR(q.UtilizationSince(0, sim.Now()), 0.25, 1e-9);
}

TEST(ServiceQueueTest, ZeroCostJobStillTakesMinimumTick) {
  Simulator sim(1);
  SimEnv env(&sim, nullptr, 1);
  ServiceQueue q(&env, 10.0);
  int done = 0;
  q.Enqueue(0, [&] { ++done; });
  sim.RunUntilIdle();
  EXPECT_EQ(done, 1);
  EXPECT_GE(q.busy_time(), 1);
}

}  // namespace
}  // namespace sdr
