// Node-level unit tests that exercise Slave and Auditor logic directly
// (without a full cluster): out-of-order state updates, ack-driven
// catch-up, token adoption rules, and audit finalization gating.
#include <gtest/gtest.h>

#include "src/core/auditor.h"
#include "src/core/pledge.h"
#include "src/core/slave.h"
#include "src/sim/network.h"

namespace sdr {
namespace {

// Captures everything a node sends.
class SinkNode : public Node {
 public:
  void HandleMessage(NodeId from, const Payload& payload) override {
    received.emplace_back(from, payload.ToBytes());
  }
  std::vector<std::pair<NodeId, Bytes>> received;
};

struct SlaveHarness {
  explicit SlaveHarness(Slave::Behavior behavior = {})
      : sim(1), net(&sim, LinkModel{1 * kMillisecond, 0, 0.0}), rng(42) {
    master_key = KeyPair::Generate(SignatureScheme::kHmacSha256, rng);
    net.AddNode(&master_stub);

    Slave::Options opts;
    opts.params.scheme = SignatureScheme::kHmacSha256;
    opts.params.max_latency = 2 * kSecond;
    opts.behavior = behavior;
    opts.key_pair = KeyPair::Generate(SignatureScheme::kHmacSha256, rng);
    opts.master_keys = {{master_stub.id() + 1, master_key.public_key}};
    // The master id used in tokens is master_stub.id()+1? No — use the
    // stub's id so acks route back to it.
    opts.master_keys = {{master_stub.id(), master_key.public_key}};
    slave = std::make_unique<Slave>(opts);
    net.AddNode(slave.get());
    net.AddNode(&client_stub);
    net.StartAll();
  }

  VersionToken Token(uint64_t version) {
    Signer signer(master_key);
    return MakeVersionToken(signer, master_stub.id(), version, sim.Now());
  }

  void SendUpdate(uint64_t version, WriteBatch batch) {
    StateUpdate update;
    update.version = version;
    update.batch = std::move(batch);
    update.token = Token(version);
    net.Send(master_stub.id(), slave->id(),
             WithType(MsgType::kStateUpdate, update.Encode()));
    sim.RunUntilIdle();
  }

  void SendKeepAlive(uint64_t version) {
    KeepAlive ka;
    ka.token = Token(version);
    net.Send(master_stub.id(), slave->id(),
             WithType(MsgType::kKeepAlive, ka.Encode()));
    sim.RunUntilIdle();
  }

  // Issues a read from the client stub and returns the decoded reply.
  Result<ReadReply> Read(const Query& query) {
    client_stub.received.clear();
    ReadRequest msg;
    msg.request_id = 7;
    msg.query = query;
    net.Send(client_stub.id(), slave->id(),
             WithType(MsgType::kReadRequest, msg.Encode()));
    sim.RunUntilIdle();
    if (client_stub.received.empty()) {
      return Error(ErrorCode::kUnavailable, "no reply");
    }
    const Bytes& payload = client_stub.received.back().second;
    return ReadReply::Decode(Bytes(payload.begin() + 1, payload.end()));
  }

  Simulator sim;
  Network net;
  Rng rng;
  KeyPair master_key;
  SinkNode master_stub;
  SinkNode client_stub;
  std::unique_ptr<Slave> slave;
};

TEST(SlaveUnitTest, BuffersOutOfOrderUpdates) {
  SlaveHarness h;
  h.SendUpdate(2, {WriteOp::Put("b", "2")});  // arrives before v1
  EXPECT_EQ(h.slave->applied_version(), 0u);
  h.SendUpdate(1, {WriteOp::Put("a", "1")});
  EXPECT_EQ(h.slave->applied_version(), 2u);
  EXPECT_EQ(h.slave->store().Get("a"), "1");
  EXPECT_EQ(h.slave->store().Get("b"), "2");
}

TEST(SlaveUnitTest, AcksReportAppliedVersion) {
  SlaveHarness h;
  h.master_stub.received.clear();
  h.SendUpdate(1, {WriteOp::Put("a", "1")});
  ASSERT_FALSE(h.master_stub.received.empty());
  const Bytes& payload = h.master_stub.received.back().second;
  auto type = PeekType(payload);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MsgType::kSlaveAck);
  auto ack = SlaveAck::Decode(Bytes(payload.begin() + 1, payload.end()));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->applied_version, 1u);
}

TEST(SlaveUnitTest, DeclinesWithoutFreshToken) {
  SlaveHarness h;
  // No token yet at all.
  auto reply = h.Read(Query::Get("x"));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok);

  // Fresh keep-alive: now it serves.
  h.SendKeepAlive(0);
  reply = h.Read(Query::Get("x"));
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->ok);

  // Let the token age past max_latency: declines again.
  h.sim.RunUntil(h.sim.Now() + 3 * kSecond);
  reply = h.Read(Query::Get("x"));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok);
  EXPECT_GT(h.slave->metrics().reads_declined_stale, 0u);
}

TEST(SlaveUnitTest, RejectsTokenFromUnknownMaster) {
  SlaveHarness h;
  // A token signed by an unknown key is ignored -> still no serving.
  Rng rng(99);
  KeyPair rogue = KeyPair::Generate(SignatureScheme::kHmacSha256, rng);
  Signer rogue_signer(rogue);
  KeepAlive ka;
  ka.token = MakeVersionToken(rogue_signer, h.master_stub.id(), 0, h.sim.Now());
  h.net.Send(h.master_stub.id(), h.slave->id(),
             WithType(MsgType::kKeepAlive, ka.Encode()));
  h.sim.RunUntilIdle();
  auto reply = h.Read(Query::Get("x"));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok);
}

TEST(SlaveUnitTest, TokenOnlyAdoptedAtMatchingVersion) {
  SlaveHarness h;
  // Keep-alive for version 3 while the slave is at version 0: unusable
  // (the slave does not hold version-3 state), so reads stay declined.
  h.SendKeepAlive(3);
  auto reply = h.Read(Query::Get("x"));
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->ok);
}

TEST(SlaveUnitTest, IgnoreUpdatesBehaviorStaysStale) {
  Slave::Behavior b;
  b.ignore_updates = true;
  SlaveHarness h(b);
  h.SendUpdate(1, {WriteOp::Put("a", "1")});
  EXPECT_EQ(h.slave->applied_version(), 0u);
  EXPECT_FALSE(h.slave->store().Get("a").has_value());
}

TEST(SlaveUnitTest, PledgeBindsTokenAtExecutionTime) {
  SlaveHarness h;
  h.SendKeepAlive(0);
  auto reply = h.Read(Query::Get("x"));
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(reply->ok);
  EXPECT_EQ(reply->pledge.token.content_version, 0u);
  EXPECT_EQ(reply->pledge.slave, h.slave->id());
  // Pledge verifies under the slave's public key.
  EXPECT_TRUE(VerifyPledgeSignature(SignatureScheme::kHmacSha256,
                                    h.slave->public_key(), reply->pledge));
  // Result hash matches.
  EXPECT_EQ(reply->result.Sha1Digest(), reply->pledge.result_sha1);
}

TEST(SlaveUnitTest, DropBehaviorTimesOutRequests) {
  Slave::Behavior b;
  b.drop_probability = 1.0;
  SlaveHarness h(b);
  h.SendKeepAlive(0);
  auto reply = h.Read(Query::Get("x"));
  EXPECT_FALSE(reply.ok());  // nothing came back
}

}  // namespace
}  // namespace sdr
