// Fixture tests for sdrlint: for each rule, one source that must fire and
// one that must stay clean, plus suppression-comment handling. Fixtures are
// inline strings driven straight through AnalyzeSource.
#include "tools/lint/lint.h"

#include <fstream>

#include <gtest/gtest.h>

namespace sdr::lint {
namespace {

// Two-pass drive, same as the CLI: index the fixture (optionally on top of
// a pre-seeded index, e.g. enums or serde bodies from "another file"), then
// run the per-file rules plus the index-wide rules (R8).
std::vector<Finding> Lint(const std::string& path, const std::string& src,
                          SymbolIndex index = {}) {
  IndexSource(path, src, index);
  std::vector<Finding> fs = AnalyzeSource(path, src, ClassifyPath(path), index);
  for (const Finding& f : AnalyzeIndex(index)) {
    fs.push_back(f);
  }
  return fs;
}

int CountRule(const std::vector<Finding>& fs, const std::string& rule) {
  int n = 0;
  for (const Finding& f : fs) {
    n += f.rule == rule ? 1 : 0;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

TEST(Lexer, TokenKindsAndLines) {
  auto toks = Tokenize("int x = 42; // note\n\"str\" == y");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[3].kind, TokKind::kNumber);
  EXPECT_EQ(toks[5].kind, TokKind::kComment);
  EXPECT_EQ(toks[5].text, "// note");
  EXPECT_EQ(toks[6].kind, TokKind::kString);
  EXPECT_EQ(toks[6].line, 2);
  EXPECT_EQ(toks[7].text, "==");  // longest-match punct
}

TEST(Lexer, RawStringsAndBlockComments) {
  auto toks = Tokenize("R\"x(no // comment in here)x\" /* multi\nline */ z");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::kString);
  EXPECT_EQ(toks[1].kind, TokKind::kComment);
  EXPECT_EQ(toks[2].line, 2);  // line counting through the block comment
}

// ---------------------------------------------------------------------------
// R1 — determinism
// ---------------------------------------------------------------------------

TEST(R1, FiresOnAmbientRandomnessInCore) {
  auto fs = Lint("src/core/foo.cc",
                "#include <random>\n"
                "int f() { std::random_device rd; return time(nullptr); }\n");
  EXPECT_GE(CountRule(fs, "R1"), 3);  // include + random_device + time(
}

TEST(R1, CleanWhenUsingSeededRng) {
  auto fs = Lint("src/core/foo.cc",
                "#include \"src/util/rng.h\"\n"
                "uint64_t f(sdr::Rng& rng) { return rng.Next(); }\n");
  EXPECT_EQ(CountRule(fs, "R1"), 0);
}

TEST(R1, DoesNotApplyOutsideDeterminismDomain) {
  auto fs = Lint("bench/bench_foo.cc",
                "#include <chrono>\nint f() { return rand(); }\n");
  EXPECT_EQ(CountRule(fs, "R1"), 0);
}

TEST(R1, RngImplementationIsExempt) {
  EXPECT_FALSE(ClassifyPath("src/util/rng.cc").r1);
  EXPECT_TRUE(ClassifyPath("src/core/master.cc").r1);
}

TEST(R1, SuppressedByAllow) {
  auto fs = Lint("src/core/foo.cc",
                "int f() {\n"
                "  return time(nullptr);  // sdrlint:allow(R1 wall clock ok)\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R1"), 0);
}

TEST(R1, RealTransportRuntimeDomainIsExempt) {
  // src/runtime/ and the deployment tools own real clocks and sockets by
  // design; R1 must not fire there.
  EXPECT_FALSE(ClassifyPath("src/runtime/real_env.cc").r1);
  EXPECT_FALSE(ClassifyPath("src/runtime/timer_queue.cc").r1);
  EXPECT_FALSE(ClassifyPath("tools/sdrnode.cc").r1);
  EXPECT_FALSE(ClassifyPath("tools/sdrcluster.cc").r1);
  auto fs = Lint("src/runtime/real_env.cc",
                 "#include <sys/epoll.h>\n"
                 "#include <ctime>\n"
                 "int64_t NowUs() {\n"
                 "  timespec ts;\n"
                 "  clock_gettime(CLOCK_MONOTONIC, &ts);\n"
                 "  return ts.tv_sec * 1000000 + ts.tv_nsec / 1000;\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R1"), 0);
}

TEST(R1, RoleCodeMustReachClocksAndSocketsThroughEnv) {
  // The inverse direction: the same real-clock/socket code inside the
  // protocol core is a violation — roles get time from Env::Now() and
  // transport from Env::Send().
  auto fs = Lint("src/core/slave.cc",
                 "#include <sys/epoll.h>\n"
                 "int64_t NowUs() {\n"
                 "  timespec ts;\n"
                 "  clock_gettime(CLOCK_MONOTONIC, &ts);\n"
                 "  nanosleep(&ts, nullptr);\n"
                 "  return ts.tv_sec;\n"
                 "}\n");
  // epoll include + clock_gettime + nanosleep.
  EXPECT_GE(CountRule(fs, "R1"), 3);
}

TEST(R1, IdentInCommentOrStringDoesNotCount) {
  auto fs = Lint("src/core/foo.cc",
                "// rand() would be bad here\n"
                "const char* k = \"rand\";\n");
  EXPECT_EQ(CountRule(fs, "R1"), 0);
}

// ---------------------------------------------------------------------------
// R2 — ordered output
// ---------------------------------------------------------------------------

TEST(R2, FiresOnUnorderedIterationFeedingASink) {
  auto fs = Lint("src/core/foo.cc",
                "#include <unordered_map>\n"
                "void Dump(const std::unordered_map<int, int>& m) {\n"
                "  for (const auto& [k, v] : m) {\n"
                "    printf(\"%d %d\\n\", k, v);\n"
                "  }\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R2"), 1);
}

TEST(R2, CleanWithoutASinkInTheFunction) {
  auto fs = Lint("src/core/foo.cc",
                "int Sum(const std::unordered_map<int, int>& m) {\n"
                "  int s = 0;\n"
                "  for (const auto& [k, v] : m) { s += v; }\n"
                "  return s;\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R2"), 0);
}

TEST(R2, FiresOnExplicitBeginInSerializer) {
  auto fs = Lint("src/core/foo.cc",
                "void Encode(std::unordered_set<int>& s, Buf& out) {\n"
                "  for (auto it = s.begin(); it != s.end(); ++it) {\n"
                "    out.PutU32(*it);\n"
                "  }\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R2"), 1);
}

TEST(R2, SortedMapIsClean) {
  auto fs = Lint("src/core/foo.cc",
                "void Dump(const std::map<int, int>& m) {\n"
                "  for (const auto& [k, v] : m) { printf(\"%d\\n\", v); }\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R2"), 0);
}

TEST(R2, SuppressedByAllow) {
  auto fs = Lint("src/core/foo.cc",
                "void Dump(std::unordered_map<int, int>& m) {\n"
                "  // sdrlint:allow(R2 order-insensitive aggregation)\n"
                "  for (const auto& [k, v] : m) { printf(\"%d\\n\", v); }\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R2"), 0);
}

TEST(R2, FiresOnUnorderedIterationFeedingTraceSerialization) {
  // Trace exporters are byte-stable artifacts: unordered iteration ahead
  // of EncodeTrace / ChromeTraceJson is a determinism bug.
  auto fs = Lint("src/trace/foo.cc",
                "#include <unordered_map>\n"
                "Bytes Export(const std::unordered_map<int, Hist>& hists) {\n"
                "  TraceData data;\n"
                "  for (const auto& [k, v] : hists) {\n"
                "    data.Add(k, v);\n"
                "  }\n"
                "  return EncodeTrace(data);\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R2"), 1);
}

TEST(R2, TraceDomainIsCoveredByR1Too) {
  // src/trace/ is part of the determinism domain: ambient time or
  // randomness in trace code would skew the byte-stable artifacts.
  auto fs = Lint("src/trace/foo.cc",
                "uint64_t Stamp() { return rand(); }\n");
  EXPECT_EQ(CountRule(fs, "R1"), 1);
}

// ---------------------------------------------------------------------------
// R3 — protocol-enum switch exhaustiveness
// ---------------------------------------------------------------------------

constexpr const char* kEnumDecl =
    "// sdrlint:protocol-enum\n"
    "enum class MsgKind : uint8_t { kRead = 1, kWrite, kAudit };\n";

TEST(R3, FiresOnDefaultInProtocolSwitch) {
  auto fs = Lint("src/core/foo.cc",
                std::string(kEnumDecl) +
                    "void f(MsgKind k) {\n"
                    "  switch (k) {\n"
                    "    case MsgKind::kRead: break;\n"
                    "    case MsgKind::kWrite: break;\n"
                    "    case MsgKind::kAudit: break;\n"
                    "    default: break;\n"
                    "  }\n"
                    "}\n");
  EXPECT_EQ(CountRule(fs, "R3"), 1);
}

TEST(R3, FiresOnMissingEnumerator) {
  auto fs = Lint("src/core/foo.cc",
                std::string(kEnumDecl) +
                    "void f(MsgKind k) {\n"
                    "  switch (k) {\n"
                    "    case MsgKind::kRead: break;\n"
                    "    case MsgKind::kWrite: break;\n"
                    "  }\n"
                    "}\n");
  ASSERT_EQ(CountRule(fs, "R3"), 1);
  for (const Finding& f : fs) {
    if (f.rule == "R3") {
      EXPECT_NE(f.message.find("kAudit"), std::string::npos);
    }
  }
}

TEST(R3, CleanWhenExhaustiveWithoutDefault) {
  auto fs = Lint("src/core/foo.cc",
                std::string(kEnumDecl) +
                    "void f(MsgKind k) {\n"
                    "  switch (k) {\n"
                    "    case MsgKind::kRead: break;\n"
                    "    case MsgKind::kWrite: break;\n"
                    "    case MsgKind::kAudit: break;\n"
                    "  }\n"
                    "}\n");
  EXPECT_EQ(CountRule(fs, "R3"), 0);
}

TEST(R3, UnannotatedEnumIsIgnored) {
  auto fs = Lint("src/core/foo.cc",
                "enum class Color { kRed, kBlue };\n"
                "void f(Color c) {\n"
                "  switch (c) { case Color::kRed: break; default: break; }\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R3"), 0);
}

TEST(R3, RegistrySpansFiles) {
  // Enum annotated in a header; the switch lives in another file.
  SymbolIndex index;
  CollectProtocolEnums(kEnumDecl, index.enums);
  auto fs = Lint("src/core/other.cc",
                "void f(MsgKind k) {\n"
                "  switch (k) { case MsgKind::kRead: default: break; }\n"
                "}\n",
                index);
  EXPECT_GE(CountRule(fs, "R3"), 1);
}

TEST(R3, SuppressedByAllowOnSwitchLine) {
  auto fs = Lint("src/core/foo.cc",
                std::string(kEnumDecl) +
                    "void f(MsgKind k) {\n"
                    "  // sdrlint:allow(R3 partial handler by design)\n"
                    "  switch (k) {\n"
                    "    case MsgKind::kRead: break;\n"
                    "    default: break;\n"
                    "  }\n"
                    "}\n");
  EXPECT_EQ(CountRule(fs, "R3"), 0);
}

// ---------------------------------------------------------------------------
// R4 — serde pairing
// ---------------------------------------------------------------------------

TEST(R4, FiresOnEncodeWithoutDecode) {
  auto fs = Lint("src/core/messages.h",
                "struct Ping {\n"
                "  void Encode(Buf& out) const;\n"
                "};\n");
  EXPECT_EQ(CountRule(fs, "R4"), 1);
}

TEST(R4, CleanWhenPaired) {
  auto fs = Lint("src/core/messages.h",
                "struct Ping {\n"
                "  void Encode(Buf& out) const;\n"
                "  static Ping Decode(Reader& in);\n"
                "};\n"
                "struct Token {\n"
                "  void EncodeTo(Buf& out) const;\n"
                "  static Token DecodeFrom(Reader& in);\n"
                "};\n");
  EXPECT_EQ(CountRule(fs, "R4"), 0);
}

TEST(R4, SeesOutOfLineDefinitions) {
  auto fs = Lint("src/core/messages.cc",
                "void Ping::Encode(Buf& out) const { out.PutU8(1); }\n"
                "Ping Ping::Decode(Reader& in) { return {}; }\n");
  EXPECT_EQ(CountRule(fs, "R4"), 0);
}

TEST(R4, OnlyAppliesToSerdeFiles) {
  auto fs = Lint("src/core/master.cc",
                "struct Scratch { void Encode(Buf& out) const; };\n");
  EXPECT_EQ(CountRule(fs, "R4"), 0);
}

// ---------------------------------------------------------------------------
// R5 — constant-time discipline
// ---------------------------------------------------------------------------

TEST(R5, FiresOnBranchOverSecret) {
  auto fs = Lint("src/crypto/foo.cc",
                "int f(const uint8_t key[32] /* sdrlint:secret */) {\n"
                "  if (key[0] != 0) { return 1; }\n"
                "  return 0;\n"
                "}\n");
  EXPECT_GE(CountRule(fs, "R5"), 1);
}

TEST(R5, FiresOnSecretArrayIndex) {
  auto fs = Lint("src/crypto/foo.cc",
                "uint8_t table[256];\n"
                "uint8_t f(uint8_t d) {\n"
                "  uint8_t digit = d;  // sdrlint:secret\n"
                "  return table[digit];\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R5"), 1);
}

TEST(R5, FiresOnBareMemcmpInCrypto) {
  auto fs = Lint("src/crypto/foo.cc",
                "bool Eq(const uint8_t* a, const uint8_t* b) {\n"
                "  return memcmp(a, b, 32) == 0;\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R5"), 1);
}

TEST(R5, PublicAnnotationDowngradesMemcmp) {
  auto fs = Lint("src/crypto/foo.cc",
                "bool Eq(const uint8_t* a, const uint8_t* b) {\n"
                "  // sdrlint:public — both encodings are published\n"
                "  return memcmp(a, b, 32) == 0;\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R5"), 0);
}

TEST(R5, SecretScopeEndsWithTheFunction) {
  auto fs = Lint("src/crypto/foo.cc",
                "void g(const uint8_t key[32] /* sdrlint:secret */) {\n"
                "  (void)key;\n"
                "}\n"
                "int h(int key) {\n"
                "  if (key != 0) { return 1; }  // different, public `key`\n"
                "  return 0;\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R5"), 0);
}

TEST(R5, ConstantTimeSelectIsClean) {
  auto fs = Lint("src/crypto/foo.cc",
                "uint8_t Select(const uint8_t t[8], uint8_t d) {\n"
                "  uint8_t digit = d;  // sdrlint:secret\n"
                "  uint8_t out = 0;\n"
                "  for (uint8_t j = 0; j < 8; ++j) {\n"
                "    uint8_t m = (uint8_t)(((uint32_t)(j ^ digit) - 1) >> 31);\n"
                "    out |= (uint8_t)(t[j] & (uint8_t)(0 - m));\n"
                "  }\n"
                "  return out;\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R5"), 0);
}

TEST(R5, AllowSuppressesDesignatedVariableTimeCode) {
  auto fs = Lint("src/crypto/foo.cc",
                "int Ladder(const uint8_t scalar[32] /* sdrlint:secret */) {\n"
                "  // sdrlint:allow(R5 reference ladder, vartime by design)\n"
                "  if (scalar[0] & 1) { return 1; }\n"
                "  return 0;\n"
                "}\n");
  EXPECT_EQ(CountRule(fs, "R5"), 0);
}

// ---------------------------------------------------------------------------
// R6 — thread confinement & lock discipline
// ---------------------------------------------------------------------------

TEST(R6, FiresOnUnguardedMemberAccess) {
  auto fs = Lint("src/util/pool_like.h",
                 "#include <mutex>\n"
                 "class Pool {\n"
                 " public:\n"
                 "  void Bad() { total_ = 1; }\n"
                 "  void Good() {\n"
                 "    std::lock_guard<std::mutex> lock(mu_);\n"
                 "    total_ = 2;\n"
                 "  }\n"
                 " private:\n"
                 "  std::mutex mu_;\n"
                 "  int total_ = 0;  // sdrlint:guarded_by(mu_)\n"
                 "};\n");
  ASSERT_EQ(CountRule(fs, "R6"), 1);
  EXPECT_NE(fs[0].message.find("total_"), std::string::npos);
  EXPECT_NE(fs[0].message.find("mu_"), std::string::npos);
}

TEST(R6, ConstructorInitializationIsExempt) {
  // Before the object escapes its constructor no other thread can hold a
  // reference, so ctor writes need no lock.
  auto fs = Lint("src/util/pool_like.h",
                 "class Pool {\n"
                 " public:\n"
                 "  Pool() { total_ = 7; }\n"
                 " private:\n"
                 "  std::mutex mu_;\n"
                 "  int total_ = 0;  // sdrlint:guarded_by(mu_)\n"
                 "};\n");
  EXPECT_EQ(CountRule(fs, "R6"), 0);
}

TEST(R6, AttributeMacroDoesNotHideTheMember) {
  // The clang -Wthread-safety macro expands to nothing under GCC but its
  // tokens are still in the declaration; the indexer must not mistake
  // `total_ SDR_GUARDED_BY(mu_)` for a method named SDR_GUARDED_BY.
  auto fs = Lint("src/util/pool_like.h",
                 "#include <mutex>\n"
                 "class Pool {\n"
                 " public:\n"
                 "  void Bad() { total_ = 1; }\n"
                 " private:\n"
                 "  std::mutex mu_;\n"
                 "  int total_ SDR_GUARDED_BY(mu_) = 0;  "
                 "// sdrlint:guarded_by(mu_)\n"
                 "};\n");
  EXPECT_EQ(CountRule(fs, "R6"), 1);
}

TEST(R6, LaneConfinedMemberNeedsLaneSubscriptInPoolRegion) {
  auto fs = Lint("src/core/engine_like.cc",
                 "void Engine::Sweep(int n) {\n"
                 "  PoolRun(n, [&](int lane, int i) {\n"
                 "    counts_[lane] += i;\n"
                 "    counts_[0] += i;\n"
                 "  });\n"
                 "}\n"
                 "class Engine {\n"
                 "  // sdrlint:lane_confined\n"
                 "  std::vector<int> counts_;\n"
                 "};\n");
  ASSERT_EQ(CountRule(fs, "R6"), 1);
  EXPECT_NE(fs[0].message.find("lane-confined"), std::string::npos);
}

TEST(R6, SharedAtomicTagRequiresAtomicDeclaration) {
  auto fs = Lint("src/core/engine_like.h",
                 "#include <atomic>\n"
                 "class Engine {\n"
                 " private:\n"
                 "  int not_atomic_ = 0;  // sdrlint:shared_atomic\n"
                 "  std::atomic<int> next_{0};  // sdrlint:shared_atomic\n"
                 "};\n");
  ASSERT_EQ(CountRule(fs, "R6"), 1);
  EXPECT_NE(fs[0].message.find("not_atomic_"), std::string::npos);
}

TEST(R6, SuppressedByAllow) {
  auto fs = Lint("src/util/pool_like.h",
                 "class Pool {\n"
                 " public:\n"
                 "  void Reset() {\n"
                 "    total_ = 0;  // sdrlint:allow(R6 callers are single-"
                 "threaded during reset)\n"
                 "  }\n"
                 " private:\n"
                 "  std::mutex mu_;\n"
                 "  int total_ = 0;  // sdrlint:guarded_by(mu_)\n"
                 "};\n");
  EXPECT_EQ(CountRule(fs, "R6"), 0);
}

// ---------------------------------------------------------------------------
// R7 — BytesView lifetime
// ---------------------------------------------------------------------------

TEST(R7, FiresOnStoredViewWithoutOwner) {
  auto fs = Lint("src/store/cache_like.h",
                 "struct Entry {\n"
                 "  BytesView view;\n"
                 "  int refs = 0;\n"
                 "};\n");
  ASSERT_EQ(CountRule(fs, "R7"), 1);
}

TEST(R7, CleanWhenOwningPayloadIsCoStored) {
  auto fs = Lint("src/store/cache_like.h",
                 "struct Entry {\n"
                 "  Payload owner;\n"
                 "  BytesView view;  // into `owner`\n"
                 "};\n");
  EXPECT_EQ(CountRule(fs, "R7"), 0);
}

TEST(R7, FiresOnContainerOfViews) {
  auto fs = Lint("src/store/batch_like.cc",
                 "void Collect() {\n"
                 "  std::vector<BytesView> parts;\n"
                 "  Fill(parts);\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R7"), 1);
}

TEST(R7, ViewOfTemporaryFires) {
  auto fs = Lint("src/core/frame_like.cc",
                 "void Send(Env* env) {\n"
                 "  Deliver(MakePayload().view());\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R7"), 1);
}

TEST(R7, SliceChainRootedAtNamedValueIsClean) {
  // p.Slice(1).view() points into `p`, which outlives the expression —
  // the canonical read path of the Payload API.
  auto fs = Lint("src/core/frame_like.cc",
                 "void Read(const Payload& p) {\n"
                 "  Consume(p.Slice(1).view());\n"
                 "  Consume(p.view().substr(4));\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R7"), 0);
}

TEST(R7, ReturnOfLocalBackedViewFires) {
  auto fs = Lint("src/core/frame_like.cc",
                 "BytesView Leak() {\n"
                 "  Bytes buf = Build();\n"
                 "  return BytesView(buf.data(), buf.size());\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R7"), 1);
}

TEST(R7, ByRefScheduleCaptureOfViewFires) {
  auto fs = Lint("src/core/frame_like.cc",
                 "void Arm(Env* env) {\n"
                 "  BytesView window = Current();\n"
                 "  env->ScheduleAfter(5, [&] { Consume(window); });\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R7"), 1);
}

TEST(R7, SuppressedByAllow) {
  auto fs = Lint("src/store/cache_like.h",
                 "struct Raw {\n"
                 "  // sdrlint:allow(R7 arena outlives every entry)\n"
                 "  BytesView view;\n"
                 "};\n");
  EXPECT_EQ(CountRule(fs, "R7"), 0);
}

// ---------------------------------------------------------------------------
// R8 — serde field-order symmetry
// ---------------------------------------------------------------------------

TEST(R8, FiresOnSwappedFieldOrder) {
  auto fs = Lint("src/core/messages.cc",
                 "void Ping::Encode(Writer& w) const {\n"
                 "  w.U32(seq);\n"
                 "  w.Blob(body);\n"
                 "}\n"
                 "Ping Ping::Decode(Reader& r) {\n"
                 "  Ping m;\n"
                 "  m.body = r.Blob();\n"
                 "  m.seq = r.U32();\n"
                 "  return m;\n"
                 "}\n");
  ASSERT_GE(CountRule(fs, "R8"), 1);
  bool named = false;
  for (const Finding& f : fs) {
    named |= f.rule == "R8" && f.message.find("seq") != std::string::npos &&
             f.message.find("body") != std::string::npos;
  }
  EXPECT_TRUE(named);
}

TEST(R8, CleanWhenSequencesMatch) {
  auto fs = Lint("src/core/messages.cc",
                 "void Ping::Encode(Writer& w) const {\n"
                 "  w.U32(seq);\n"
                 "  w.Blob(body);\n"
                 "}\n"
                 "Ping Ping::Decode(Reader& r) {\n"
                 "  Ping m;\n"
                 "  m.seq = r.U32();\n"
                 "  m.body = r.Blob();\n"
                 "  return m;\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R8"), 0);
}

TEST(R8, PairsEncodeAndDecodeAcrossFiles) {
  // Encode inline in the header, Decode out-of-line in the .cc — the
  // symbol index spans both translation units.
  SymbolIndex index;
  IndexSource("src/core/messages.h",
              "struct Ack {\n"
              "  void Encode(Writer& w) const {\n"
              "    w.U64(version);\n"
              "    w.Blob(sig);\n"
              "  }\n"
              "};\n",
              index);
  auto fs = Lint("src/core/messages.cc",
                 "Ack Ack::Decode(Reader& r) {\n"
                 "  Ack m;\n"
                 "  m.sig = r.Blob();\n"
                 "  m.version = r.U64();\n"
                 "  return m;\n"
                 "}\n",
                 index);
  EXPECT_GE(CountRule(fs, "R8"), 1);
}

TEST(R8, AsymmetricStepCountFires) {
  auto fs = Lint("src/core/messages.cc",
                 "void Ping::Encode(Writer& w) const {\n"
                 "  w.U32(seq);\n"
                 "  w.Blob(body);\n"
                 "}\n"
                 "Ping Ping::Decode(Reader& r) {\n"
                 "  Ping m;\n"
                 "  m.seq = r.U32();\n"
                 "  return m;\n"
                 "}\n");
  ASSERT_EQ(CountRule(fs, "R8"), 1);
  EXPECT_NE(fs[0].message.find("2"), std::string::npos);
}

TEST(R8, DecodeIntoLocalsDoesNotFalselyMismatch) {
  // Loop-style serde reads counts into locals; the field name is not
  // recoverable, so only the op sequence is compared.
  auto fs = Lint("src/core/messages.cc",
                 "void Batch::Encode(Writer& w) const {\n"
                 "  w.U32(static_cast<uint32_t>(certs.size()));\n"
                 "  w.Blob(tail);\n"
                 "}\n"
                 "Batch Batch::Decode(Reader& r) {\n"
                 "  Batch m;\n"
                 "  uint32_t n = r.U32();\n"
                 "  m.tail = r.Blob();\n"
                 "  return m;\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R8"), 0);
}

TEST(R8, VersionVectorShapedSerdeIsCleanWhenSymmetric) {
  // The forkcheck wire shape: scalars then two blobs, one of them the
  // signature last — the order every commitment-like struct must keep.
  auto fs = Lint("src/forkcheck/vv_like.cc",
                 "void Vv::EncodeTo(Writer& w) const {\n"
                 "  w.U32(slave);\n"
                 "  w.U64(content_version);\n"
                 "  w.U64(chain_length);\n"
                 "  w.Blob(head_sha1);\n"
                 "  w.Blob(signature);\n"
                 "}\n"
                 "Vv Vv::DecodeFrom(Reader& r) {\n"
                 "  Vv v;\n"
                 "  v.slave = r.U32();\n"
                 "  v.content_version = r.U64();\n"
                 "  v.chain_length = r.U64();\n"
                 "  v.head_sha1 = r.Blob();\n"
                 "  v.signature = r.Blob();\n"
                 "  return v;\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R8"), 0);
}

TEST(R8, VersionVectorShapedSerdeFiresWhenDecodeSwapsBlobs) {
  // Swapping the two trailing blobs type-checks (both are Bytes) and even
  // round-trips in isolation — only the cross-function sequence diff
  // catches that signatures would be verified against hashes.
  auto fs = Lint("src/forkcheck/vv_like.cc",
                 "void Vv::EncodeTo(Writer& w) const {\n"
                 "  w.U32(slave);\n"
                 "  w.U64(content_version);\n"
                 "  w.U64(chain_length);\n"
                 "  w.Blob(head_sha1);\n"
                 "  w.Blob(signature);\n"
                 "}\n"
                 "Vv Vv::DecodeFrom(Reader& r) {\n"
                 "  Vv v;\n"
                 "  v.slave = r.U32();\n"
                 "  v.content_version = r.U64();\n"
                 "  v.chain_length = r.U64();\n"
                 "  v.signature = r.Blob();\n"
                 "  v.head_sha1 = r.Blob();\n"
                 "  return v;\n"
                 "}\n");
  ASSERT_GE(CountRule(fs, "R8"), 1);
  bool named = false;
  for (const Finding& f : fs) {
    named |= f.rule == "R8" &&
             f.message.find("head_sha1") != std::string::npos &&
             f.message.find("signature") != std::string::npos;
  }
  EXPECT_TRUE(named);
}

TEST(R8, SuppressedByAllowOnEitherBody) {
  auto fs = Lint("src/core/messages.cc",
                 "void Ping::Encode(Writer& w) const {\n"
                 "  w.U32(seq);\n"
                 "  w.Blob(body);\n"
                 "}\n"
                 "// sdrlint:allow(R8 legacy wire order, migration tracked)\n"
                 "Ping Ping::Decode(Reader& r) {\n"
                 "  Ping m;\n"
                 "  m.body = r.Blob();\n"
                 "  m.seq = r.U32();\n"
                 "  return m;\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R8"), 0);
}

// The shard-map serialization (placement query/response, batch commit
// certificate) lives in src/core/shard.*, which joined the R4/R8 domains
// with keyspace sharding.

TEST(R4, AppliesToShardSerdeFiles) {
  auto fs = Lint("src/core/shard.h",
                 "struct PlacementQuery {\n"
                 "  void Encode(Buf& out) const;\n"
                 "};\n");
  EXPECT_EQ(CountRule(fs, "R4"), 1);
}

TEST(R8, PlacementResponseShapedSerdeIsCleanWhenSymmetric) {
  auto fs = Lint("src/core/shard.cc",
                 "void PlacementResponse::Encode(Writer& w) const {\n"
                 "  w.U64(epoch);\n"
                 "  w.U32(num_shards);\n"
                 "  w.Blob(map);\n"
                 "}\n"
                 "PlacementResponse PlacementResponse::Decode(Reader& r) {\n"
                 "  PlacementResponse m;\n"
                 "  m.epoch = r.U64();\n"
                 "  m.num_shards = r.U32();\n"
                 "  m.map = r.Blob();\n"
                 "  return m;\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R8"), 0);
}

TEST(R8, BatchCommitShapedSerdeFiresWhenDecodeSwapsBlobs) {
  auto fs = Lint("src/core/shard.cc",
                 "void BatchCert::Encode(Writer& w) const {\n"
                 "  w.U64(first_version);\n"
                 "  w.U64(last_version);\n"
                 "  w.Blob(digest);\n"
                 "  w.Blob(sig);\n"
                 "}\n"
                 "BatchCert BatchCert::Decode(Reader& r) {\n"
                 "  BatchCert m;\n"
                 "  m.first_version = r.U64();\n"
                 "  m.last_version = r.U64();\n"
                 "  m.sig = r.Blob();\n"
                 "  m.digest = r.Blob();\n"
                 "  return m;\n"
                 "}\n");
  ASSERT_GE(CountRule(fs, "R8"), 1);
}

// ---------------------------------------------------------------------------
// Baseline and report
// ---------------------------------------------------------------------------

TEST(Baseline, FindingKeyExcludesLinesAndNormalizesPaths) {
  Finding a{"R7", "/home/ci/checkout/src/store/cache.h", 12, "stored view"};
  Finding b{"R7", "src/store/cache.h", 99, "stored view"};
  EXPECT_EQ(FindingKey(a), FindingKey(b));
  EXPECT_EQ(NormalizeRepoPath("/abs/src/x.h"), "src/x.h");
  // "src/" must match at a path-component boundary, not mid-word.
  EXPECT_EQ(NormalizeRepoPath("mysrc/x.h"), "mysrc/x.h");
}

TEST(Baseline, RoundTripsThroughJsonFile) {
  std::vector<Finding> fs = {
      {"R6", "src/a.cc", 3, "unguarded"},
      {"R6", "src/a.cc", 9, "unguarded"},  // duplicate key, count 2
      {"R8", "src/b.cc", 1, "swapped"},
  };
  const std::string path = testing::TempDir() + "/sdrlint_baseline.json";
  {
    std::ofstream out(path);
    out << BaselineToJson(fs);
  }
  std::map<std::string, int> loaded;
  ASSERT_TRUE(LoadBaseline(path, &loaded));
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[FindingKey(fs[0])], 2);
  EXPECT_EQ(loaded[FindingKey(fs[2])], 1);
}

TEST(Baseline, LoadFailsOnMissingFile) {
  std::map<std::string, int> loaded;
  EXPECT_FALSE(LoadBaseline("/nonexistent/baseline.json", &loaded));
}

TEST(Baseline, DiffSplitsFreshSuppressedAndFixed) {
  Finding known{"R6", "src/a.cc", 3, "unguarded"};
  Finding fresh{"R8", "src/b.cc", 1, "swapped"};
  std::map<std::string, int> baseline;
  baseline[FindingKey(known)] = 2;  // one was fixed since the baseline
  BaselineDiff diff = DiffAgainstBaseline({known, fresh}, baseline);
  ASSERT_EQ(diff.suppressed.size(), 1u);
  EXPECT_EQ(diff.suppressed[0].rule, "R6");
  ASSERT_EQ(diff.fresh.size(), 1u);
  EXPECT_EQ(diff.fresh[0].rule, "R8");
  ASSERT_EQ(diff.fixed.size(), 1u);
  EXPECT_EQ(diff.fixed[0], FindingKey(known));
}

TEST(Report, JsonCarriesPerRuleCountsAndBaselineStatus) {
  Finding known{"R6", "src/a.cc", 3, "unguarded"};
  Finding fresh{"R8", "src/b.cc", 1, "swapped"};
  std::map<std::string, int> baseline;
  baseline[FindingKey(known)] = 1;
  BaselineDiff diff = DiffAgainstBaseline({known, fresh}, baseline);
  std::string json = ReportJson(42, {known, fresh}, &diff);
  EXPECT_NE(json.find("\"files_scanned\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"per_rule\""), std::string::npos);
  EXPECT_NE(json.find("\"R6\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"R8\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"fresh\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"baseline\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Hot-path fixtures: the InlineFunction / Payload idioms introduced by the
// simulator rewrite must stay clean under every rule that covers their
// directories, and the constructs they rely on must not regress into the
// banned lists.
// ---------------------------------------------------------------------------

TEST(HotPath, InlineFunctionIdiomsAreCleanInUtil) {
  // Placement new, launder, and an Ops vtable — the inline_function.h
  // pattern — must not trip any rule in src/util.
  auto fs = Lint("src/util/inline_function.h",
                 "template <typename Fn>\n"
                 "void Store(void* buf, Fn&& f) {\n"
                 "  ::new (buf) Fn(static_cast<Fn&&>(f));\n"
                 "  (*std::launder(reinterpret_cast<Fn*>(buf)))();\n"
                 "}\n");
  EXPECT_TRUE(fs.empty());
}

TEST(HotPath, PayloadDeliveryLambdaIsCleanInSimDomain) {
  // The network delivery event: shared Payload moved into an event lambda,
  // inside the determinism domain. Seeded Rng draws are fine; the payload
  // machinery must not look like ambient nondeterminism.
  auto fs = Lint("src/sim/network.cc",
                 "#include \"src/util/bytes.h\"\n"
                 "void Network::Send(NodeId from, NodeId to, Payload p) {\n"
                 "  if (rng_.NextBool(link.drop_probability)) { return; }\n"
                 "  sim_->ScheduleAfter(d, [this, from, to,\n"
                 "                          msg = std::move(p)]() {\n"
                 "    node(to)->HandleMessage(from, msg);\n"
                 "  });\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R1"), 0);
  EXPECT_EQ(CountRule(fs, "R2"), 0);
}

TEST(HotPath, ThreadPrimitivesAllowedInChaosDomain) {
  // The parallel seed sweep uses std::thread/std::mutex inside src/chaos —
  // R1 bans ambient *randomness and clocks*, not threads; each seed's
  // simulation stays seed-deterministic.
  auto fs = Lint("src/chaos/runner.cc",
                 "#include <thread>\n"
                 "#include <mutex>\n"
                 "void Sweep(int jobs) {\n"
                 "  std::mutex mu;\n"
                 "  std::vector<std::thread> workers;\n"
                 "  workers.emplace_back([&] { std::lock_guard<std::mutex> "
                 "l(mu); });\n"
                 "  for (auto& t : workers) { t.join(); }\n"
                 "}\n");
  EXPECT_EQ(CountRule(fs, "R1"), 0);
}

TEST(HotPath, WallClockInChaosDomainStillFires) {
  // The thread allowance must not loosen the clock ban: timing the sweep
  // with a wall clock inside src/chaos is still a determinism violation.
  auto fs = Lint("src/chaos/runner.cc",
                 "#include <chrono>\n"
                 "double Elapsed() { return time(nullptr); }\n");
  EXPECT_GE(CountRule(fs, "R1"), 2);  // include + time(
}

TEST(Classify, DomainsMatchTheRuleCatalogue) {
  EXPECT_TRUE(ClassifyPath("src/crypto/ed25519.cc").r5);
  EXPECT_FALSE(ClassifyPath("src/core/master.cc").r5);
  EXPECT_TRUE(ClassifyPath("src/core/messages.h").r4);
  EXPECT_TRUE(ClassifyPath("src/core/pledge.cc").r4);
  EXPECT_FALSE(ClassifyPath("src/core/slave.cc").r4);
  EXPECT_TRUE(ClassifyPath("src/chaos/runner.cc").r1);
  EXPECT_TRUE(ClassifyPath("src/trace/export.cc").r1);
  EXPECT_FALSE(ClassifyPath("tools/sdrsim.cc").r1);
  EXPECT_TRUE(ClassifyPath("tools/sdrsim.cc").r2);
  EXPECT_TRUE(ClassifyPath("tools/sdrsim.cc").r3);
}

}  // namespace
}  // namespace sdr::lint
