#include "src/util/json.h"

#include <cmath>

#include <gtest/gtest.h>

namespace sdr {
namespace {

TEST(Json, ScalarDumps) {
  EXPECT_EQ(JsonValue().Dump(), "null");
  EXPECT_EQ(JsonValue(true).Dump(), "true");
  EXPECT_EQ(JsonValue(false).Dump(), "false");
  EXPECT_EQ(JsonValue(int64_t{-42}).Dump(), "-42");
  EXPECT_EQ(JsonValue(uint64_t{7}).Dump(), "7");
  EXPECT_EQ(JsonValue(1.5).Dump(), "1.500000");
  EXPECT_EQ(JsonValue(3.0).Dump(), "3.0");
  EXPECT_EQ(JsonValue("hi").Dump(), "\"hi\"");
}

TEST(Json, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonValue("a\"b\\c\nd\te").Dump(),
            "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(Json, ObjectKeysEmitSorted) {
  JsonValue v = JsonValue::Object();
  v["zebra"] = 1;
  v["alpha"] = 2;
  v["midway"] = 3;
  EXPECT_EQ(v.Dump(), "{\"alpha\":2,\"midway\":3,\"zebra\":1}");
}

TEST(Json, InsertionOrderDoesNotAffectBytes) {
  JsonValue a = JsonValue::Object();
  a["x"] = 1;
  a["y"]["b"] = 2;
  a["y"]["a"] = 3;

  JsonValue b = JsonValue::Object();
  b["y"]["a"] = 3;
  b["y"]["b"] = 2;
  b["x"] = 1;

  EXPECT_EQ(a.Dump(), b.Dump());
  EXPECT_EQ(a.Dump(2), b.Dump(2));
}

TEST(Json, ArraysPreserveOrder) {
  JsonValue v = JsonValue::Array();
  v.Append(3);
  v.Append("two");
  v.Append(JsonValue());
  EXPECT_EQ(v.Dump(), "[3,\"two\",null]");
}

TEST(Json, PrettyPrintIsStable) {
  JsonValue v = JsonValue::Object();
  v["a"] = 1;
  v["list"].Append(JsonValue::Object());
  EXPECT_EQ(v.Dump(2),
            "{\n  \"a\": 1,\n  \"list\": [\n    {}\n  ]\n}");
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(JsonValue(std::nan("")).Dump(), "null");
}

}  // namespace
}  // namespace sdr
