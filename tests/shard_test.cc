// Scale-out tests: shard-map construction and placement serialization,
// rebalance determinism, group-commit pledge equivalence, multi-shard
// multiread freshness-token merging, and the chaos invariants at
// --shards=4.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "src/chaos/runner.h"
#include "src/core/cluster.h"
#include "src/core/shard.h"
#include "src/util/rng.h"

namespace sdr {
namespace {

std::vector<std::string> CatalogKeys(int n) {
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "price/%05d", i);
    keys.push_back(buf);
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Placement round-trip.
// ---------------------------------------------------------------------------

TEST(ShardPlacementTest, SignedPlacementRoundTripsThroughTheWire) {
  Rng rng(11);
  KeyPair content = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer owner(content);

  ShardMap map = BuildShardMap(CatalogKeys(64), 4);
  ASSERT_EQ(map.num_shards(), 4u);
  ShardPlacement placement =
      MakeShardPlacement(owner, /*generation=*/3, map,
                         {{10, 11}, {12, 13}, {14, 15}, {16, 17}});

  Bytes wire = placement.Encode();
  auto decoded = ShardPlacement::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, placement);
  EXPECT_TRUE(VerifyShardPlacement(SignatureScheme::kEd25519,
                                   content.public_key, *decoded));
}

TEST(ShardPlacementTest, TamperedPlacementFailsVerification) {
  Rng rng(12);
  KeyPair content = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer owner(content);

  ShardPlacement placement = MakeShardPlacement(
      owner, 1, BuildShardMap(CatalogKeys(32), 2), {{10}, {11}});
  ASSERT_TRUE(VerifyShardPlacement(SignatureScheme::kEd25519,
                                   content.public_key, placement));

  // An untrusted host moving a range boundary, re-pointing a shard at a
  // master it controls, or replaying an older generation must all break
  // the content signature.
  ShardPlacement moved = placement;
  moved.map.boundaries[0] += "x";
  EXPECT_FALSE(VerifyShardPlacement(SignatureScheme::kEd25519,
                                    content.public_key, moved));
  ShardPlacement repointed = placement;
  repointed.shard_masters[1] = {666};
  EXPECT_FALSE(VerifyShardPlacement(SignatureScheme::kEd25519,
                                    content.public_key, repointed));
  ShardPlacement replayed = placement;
  replayed.generation = 0;
  EXPECT_FALSE(VerifyShardPlacement(SignatureScheme::kEd25519,
                                    content.public_key, replayed));
}

// ---------------------------------------------------------------------------
// Rebalance determinism.
// ---------------------------------------------------------------------------

TEST(ShardMapTest, BuildDependsOnlyOnTheKeySet) {
  std::vector<std::string> keys = CatalogKeys(100);
  ShardMap canonical = BuildShardMap(keys, 4);

  std::vector<std::string> shuffled = keys;
  std::mt19937 gen(99);
  std::shuffle(shuffled.begin(), shuffled.end(), gen);
  EXPECT_EQ(BuildShardMap(shuffled, 4), canonical);

  std::vector<std::string> duplicated = keys;
  duplicated.insert(duplicated.end(), keys.begin(), keys.end());
  EXPECT_EQ(BuildShardMap(duplicated, 4), canonical);
}

TEST(ShardMapTest, RebalanceAndBackReproducesTheMapBitForBit) {
  std::vector<std::string> keys = CatalogKeys(100);
  ShardMap four = BuildShardMap(keys, 4);
  ShardMap eight = BuildShardMap(keys, 8);
  EXPECT_EQ(eight.num_shards(), 8u);
  EXPECT_EQ(BuildShardMap(keys, 4), four);  // back from 8: same inputs
  EXPECT_EQ(BuildShardMap(keys, 8), eight);

  // Every key lands in exactly the shard whose [lo, hi) contains it.
  for (const std::string& key : keys) {
    uint32_t shard = four.ShardForKey(key);
    std::string lo = four.ShardLo(shard);
    std::string hi = four.ShardHi(shard);
    EXPECT_TRUE(lo.empty() || lo <= key) << key;
    EXPECT_TRUE(hi.empty() || key < hi) << key;
  }
}

// ---------------------------------------------------------------------------
// Group-commit pledge equivalence.
// ---------------------------------------------------------------------------

ClusterConfig WriteHeavyConfig(uint64_t seed, uint32_t commit_batch) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 2;
  config.slaves_per_master = 2;
  config.num_clients = 4;
  config.corpus.n_items = 50;
  config.mix.n_items = 50;
  config.write_gen.n_items = 50;
  config.params.scheme = SignatureScheme::kHmacSha256;
  // A 250ms cap keeps closed-loop writers from starving the read stream,
  // and a window most of that wide lets bundles actually fill.
  config.params.max_latency = 250 * kMillisecond;
  config.params.keepalive_period = 125 * kMillisecond;
  config.params.commit_batch = commit_batch;
  config.params.commit_window = 200 * kMillisecond;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 50 * kMillisecond;
  config.client_write_fraction = 0.3;
  return config;
}

TEST(GroupCommitTest, BatchedPledgesVerifyIdenticallyToUnbatched) {
  // Same seed, same load; the only difference is group commit. Pledges
  // derived from the batch certificate must verify exactly like per-write
  // pledges: every accepted read carries a verified pledge (clients fail
  // reads otherwise), ground truth agrees, and the auditor's re-execution
  // finds nothing.
  for (uint32_t batch : {1u, 8u}) {
    Cluster cluster(WriteHeavyConfig(21, batch));
    cluster.RunFor(30 * kSecond);
    auto totals = cluster.ComputeTotals();
    SCOPED_TRACE("commit_batch=" + std::to_string(batch));
    EXPECT_GT(totals.reads_accepted, 100u);
    EXPECT_GT(totals.writes_committed_masters, 0u);
    EXPECT_EQ(cluster.accepted_wrong(), 0u);
    EXPECT_EQ(totals.double_check_mismatches, 0u);
    EXPECT_GT(cluster.auditor().metrics().pledges_received, 0u);
    EXPECT_EQ(cluster.auditor().metrics().mismatches_found, 0u);
    if (batch > 1) {
      EXPECT_GT(totals.batches_committed, 0u);
    } else {
      EXPECT_EQ(totals.batches_committed, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Multi-shard multiread freshness-token merge.
// ---------------------------------------------------------------------------

TEST(ShardedClusterTest, MultiShardReadMergesResultsAndFreshTokens) {
  ClusterConfig config;
  config.seed = 31;
  config.num_shards = 4;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 2;
  config.corpus.n_items = 80;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.client_mode = Client::LoadMode::kManual;
  Cluster cluster(config);
  cluster.RunFor(3 * kSecond);  // setup + first keep-alives
  ASSERT_TRUE(cluster.client(0).ready());

  // A whole-keyspace COUNT must fan out to every shard and merge to the
  // unsharded answer (three catalog rows per item); acceptance requires
  // every per-shard leg to carry a verified pledge with a fresh token.
  bool accepted = false;
  QueryResult merged;
  cluster.client(0).IssueRead(Query::Aggregate(QueryKind::kCount),
                              [&](bool ok, const QueryResult& result) {
                                accepted = ok;
                                merged = result;
                              });
  cluster.RunFor(2 * kSecond);
  ASSERT_TRUE(accepted);
  EXPECT_EQ(merged.scalar, 3 * 80);

  const ClientMetrics& cm = cluster.client(0).metrics();
  EXPECT_EQ(cm.shard_subreads_issued, 4u);
  EXPECT_EQ(cm.shard_subreads_accepted, 4u);
  // The merge's freshness is bounded by the oldest per-shard token, which
  // keep-alives keep within the paper's max_latency staleness bound.
  ASSERT_GT(cm.merged_token_age_us.count(), 0u);
  EXPECT_LE(cm.merged_token_age_us.Quantile(1.0),
            static_cast<double>(config.params.max_latency));
}

// ---------------------------------------------------------------------------
// Chaos invariants at four shards.
// ---------------------------------------------------------------------------

TEST(ShardedChaosTest, InvariantsHoldPerShardAtFourShards) {
  ClusterConfig config;
  config.seed = 5;
  config.num_shards = 4;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 50 * kMillisecond;
  config.client_write_fraction = 0.2;
  config.corpus.n_items = 80;
  config.mix.n_items = 80;
  config.write_gen.n_items = 80;

  // The acceptance scenario shape from the unsharded sweep: a slave turns
  // malicious mid-run, then heals. Every existing invariant must hold with
  // the keyspace split four ways — detection, exclusion and freshness are
  // all per-shard properties now.
  auto scenario = ParseScenario(
      "at 5s set_behavior slave:0 lie_probability=0.5; at 20s heal all");
  ASSERT_TRUE(scenario.ok());
  Cluster cluster(config);
  ChaosController controller(&cluster, *scenario,
                             DefaultCheckers(cluster.config()));
  controller.Install();
  cluster.RunFor(40 * kSecond);
  controller.Finish();
  for (const Violation& v : controller.violations()) {
    ADD_FAILURE() << v.ToString();
  }
  Cluster::Totals totals = cluster.ComputeTotals();
  EXPECT_GT(totals.reads_accepted, 0u);
  // Wrong accepts may happen while the liar is live; the invariant (and
  // the point of per-shard detection) is that each one is matched by
  // double-check or audit evidence, never silent.
  if (cluster.accepted_wrong() > 0) {
    EXPECT_GT(totals.double_check_mismatches + totals.auditor_mismatches, 0u);
  }
}

}  // namespace
}  // namespace sdr
