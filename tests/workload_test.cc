// Tests for the workload substrate: Zipf sampling, corpus builder, query
// mix, write generator and the diurnal shaper.
#include <gtest/gtest.h>

#include <map>

#include "src/store/executor.h"
#include "src/workload/workload.h"

namespace sdr {
namespace {

TEST(ZipfTest, RanksInRangeAndSkewed) {
  ZipfGenerator zipf(100, 0.99);
  Rng rng(1);
  std::map<size_t, int> counts;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    size_t r = zipf.Next(rng);
    ASSERT_LT(r, 100u);
    counts[r]++;
  }
  // Rank 0 must be much more popular than rank 50.
  EXPECT_GT(counts[0], 10 * std::max(counts[50], 1));
  // ...and roughly twice as popular as rank 1 (1/1 vs 1/2^0.99).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_LT(counts[0], 3 * counts[1]);
}

TEST(ZipfTest, UniformWhenSZero) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(2);
  std::map<size_t, int> counts;
  for (int i = 0; i < 10000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, 1000, 200) << rank;
  }
}

TEST(CorpusTest, LayoutAndNumericFields) {
  CorpusConfig config;
  config.n_items = 25;
  Rng rng(3);
  DocumentStore store = BuildCatalogCorpus(config, rng);
  EXPECT_EQ(store.size(), 75u);  // item + price + stock per index
  for (size_t i = 0; i < config.n_items; ++i) {
    ASSERT_TRUE(store.Get(ItemKey(i)).has_value()) << i;
    auto price = store.Get(PriceKey(i));
    ASSERT_TRUE(price.has_value()) << i;
    int64_t value = std::stoll(*price);
    EXPECT_GE(value, 1);
    EXPECT_LE(value, config.max_price_cents);
  }
}

TEST(CorpusTest, DeterministicPerSeed) {
  CorpusConfig config;
  config.n_items = 10;
  Rng a(4), b(4), c(5);
  EXPECT_EQ(BuildCatalogCorpus(config, a).Fingerprint(),
            BuildCatalogCorpus(config, b).Fingerprint());
  EXPECT_NE(BuildCatalogCorpus(config, a).Fingerprint(),
            BuildCatalogCorpus(config, c).Fingerprint());
}

TEST(QueryMixTest, RespectsWeights) {
  QueryMix mix;
  mix.n_items = 100;
  mix.get_weight = 1.0;
  mix.scan_weight = 0;
  mix.grep_weight = 0;
  mix.agg_weight = 0;
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mix.Generate(rng).kind, QueryKind::kGet);
  }

  mix.get_weight = 0;
  mix.grep_weight = 1.0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mix.Generate(rng).kind, QueryKind::kGrep);
  }
}

TEST(QueryMixTest, GeneratedQueriesAreValid) {
  QueryMix mix;
  mix.n_items = 50;
  Rng rng(7);
  CorpusConfig corpus;
  corpus.n_items = 50;
  Rng crng(8);
  DocumentStore store = BuildCatalogCorpus(corpus, crng);
  QueryExecutor exec;
  for (int i = 0; i < 500; ++i) {
    Query q = mix.Generate(rng);
    auto outcome = exec.Execute(store, q);
    ASSERT_TRUE(outcome.ok()) << q.ToText();
  }
}

TEST(WriteGenTest, BatchesApplyCleanly) {
  WriteGen gen;
  gen.n_items = 30;
  Rng rng(9);
  CorpusConfig corpus;
  corpus.n_items = 30;
  Rng crng(10);
  DocumentStore store = BuildCatalogCorpus(corpus, crng);
  for (int i = 0; i < 200; ++i) {
    WriteBatch batch = gen.Generate(rng);
    ASSERT_FALSE(batch.empty());
    store.ApplyBatch(batch);
  }
}

TEST(DiurnalTest, TroughAndPeak) {
  DiurnalShape shape;
  shape.min_fraction = 0.1;
  // Trough at 3 AM.
  EXPECT_NEAR(shape.Multiplier(3 * kHour), 0.1, 0.01);
  // Peak 12 hours later.
  EXPECT_NEAR(shape.Multiplier(15 * kHour), 1.0, 0.01);
  // Periodic across days.
  EXPECT_NEAR(shape.Multiplier(3 * kHour), shape.Multiplier(27 * kHour), 1e-9);
}

TEST(DiurnalTest, BoundedEverywhere) {
  DiurnalShape shape;
  for (SimTime t = 0; t < 48 * kHour; t += 13 * kMinute) {
    double m = shape.Multiplier(t);
    EXPECT_GE(m, shape.min_fraction - 1e-9);
    EXPECT_LE(m, 1.0 + 1e-9);
  }
}

}  // namespace
}  // namespace sdr
