// Tests for the auditor's deduplicated, memoized, multi-worker
// re-execution engine:
//   - dedup collapses identical (version, query) pledges into one
//     execution but still compares every pledge's hash individually, so a
//     forged pledge hiding behind an honest twin is caught;
//   - the cross-version memo never produces a stale verdict: on an honest
//     cluster with a live write stream, memo hits across finalized
//     versions yield zero mismatches;
//   - every simulated output — trace bytes and auditor metrics — is
//     byte-identical at any --audit_jobs value, on calm and chaotic runs.
#include <gtest/gtest.h>

#include <vector>

#include "src/chaos/runner.h"
#include "src/core/cluster.h"
#include "src/trace/export.h"

namespace sdr {
namespace {

// A small closed-loop cluster with enough query repetition for the dedup
// and memo paths to light up within a short run.
ClusterConfig EngineConfig(uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 4;
  config.corpus.n_items = 50;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 0.05;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 5 * kMillisecond;
  config.client_write_fraction = 0.02;
  config.track_ground_truth = false;
  return config;
}

TEST(AuditEngineTest, ForgedPledgeBehindDedupedTwinIsCaught) {
  ClusterConfig config = EngineConfig(7);
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 0.05;
    }
    return b;
  };
  Cluster cluster(config);
  cluster.RunFor(60 * kSecond);

  AuditorMetrics am = cluster.auditor().metrics();
  // The workload must actually exercise the dedup path...
  ASSERT_GT(am.pledges_deduped, 0u);
  // ...and the liar must not be able to hide behind it: dedup shares the
  // re-execution, never the per-pledge comparison.
  EXPECT_GT(am.mismatches_found, 0u);
  EXPECT_GT(am.accusations_sent, 0u);
}

TEST(AuditEngineTest, MemoHitsAcrossFinalizedVersionsStayCorrect) {
  // Honest cluster with a steady write stream: versions commit, finalize,
  // and prune while the memo reuses results across them. A memo entry
  // surviving a write that actually affected its query would re-execute to
  // a different hash than some pledge and show up as a false mismatch.
  Cluster cluster(EngineConfig(11));
  cluster.RunFor(60 * kSecond);

  AuditorMetrics am = cluster.auditor().metrics();
  ASSERT_GT(am.reexec_memo_hits, 0u);
  ASSERT_GT(am.versions_finalized, 1u);
  EXPECT_EQ(am.mismatches_found, 0u);
  EXPECT_EQ(am.accusations_sent, 0u);
  EXPECT_EQ(am.bad_read_notices_sent, 0u);
}

// Every scalar the auditor reports, as one comparable tuple.
std::vector<uint64_t> MetricTuple(const AuditorMetrics& am) {
  return {am.pledges_received,      am.pledges_audited,
          am.pledges_skipped_sampling, am.pledges_version_pruned,
          am.pledges_exec_failed,   am.pledges_bad_signature,
          am.mismatches_found,      am.accusations_sent,
          am.bad_read_notices_sent, am.cache_hits,
          am.versions_finalized,    am.work_units_executed,
          am.pledges_deduped,       am.reexec_memo_hits,
          am.reexec_memo_misses,    am.audit_workers_busy,
          am.verify_batches,        am.sigs_batch_verified,
          am.sig_cache_hits,        am.sig_cache_misses,
          am.sig_cache_evictions};
}

struct RunOutput {
  Bytes trace;
  std::vector<uint64_t> auditor;
};

RunOutput RunWithJobs(int audit_jobs, bool chaotic) {
  ClusterConfig config = EngineConfig(13);
  config.audit_jobs = audit_jobs;
  config.trace.enabled = true;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 1) {
      b.lie_probability = 0.02;
    }
    return b;
  };
  Cluster cluster(config);

  std::unique_ptr<ChaosController> controller;
  if (chaotic) {
    auto scenario = ParseScenario(
        "at 5s set_behavior slave:0 lie_probability=0.2; "
        "at 20s partition slave:0 master:*; at 30s heal all");
    EXPECT_TRUE(scenario.ok());
    controller = std::make_unique<ChaosController>(
        &cluster, std::move(scenario).value(),
        std::vector<std::unique_ptr<InvariantChecker>>{});
    controller->Install();
  }
  cluster.RunFor(45 * kSecond);
  if (controller) {
    controller->Finish();
  }

  RunOutput out;
  out.trace = EncodeTrace(*cluster.trace());
  out.auditor = MetricTuple(cluster.auditor().metrics());
  return out;
}

TEST(AuditEngineTest, OutputsByteIdenticalAcrossWorkerCounts) {
  for (bool chaotic : {false, true}) {
    RunOutput base = RunWithJobs(1, chaotic);
    for (int jobs : {2, 8}) {
      RunOutput other = RunWithJobs(jobs, chaotic);
      EXPECT_EQ(base.trace, other.trace)
          << "trace diverged at audit_jobs=" << jobs
          << (chaotic ? " (chaos)" : " (plain)");
      EXPECT_EQ(base.auditor, other.auditor)
          << "auditor metrics diverged at audit_jobs=" << jobs
          << (chaotic ? " (chaos)" : " (plain)");
    }
  }
}

}  // namespace
}  // namespace sdr
