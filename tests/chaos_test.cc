// Tests for the chaos scenario engine: the text grammar and builder, the
// controller's selector resolution and event application, and each
// invariant checker — both passing on an honest cluster and firing on a
// deliberately broken one.
#include <gtest/gtest.h>

#include <set>

#include "src/chaos/runner.h"

namespace sdr {
namespace {

using Role = NodeSelector::Role;

// ---------------------------------------------------------------------------
// Times.
// ---------------------------------------------------------------------------

TEST(ChaosTimeTest, ParsesUnits) {
  EXPECT_EQ(*ParseSimTime("10s"), 10 * kSecond);
  EXPECT_EQ(*ParseSimTime("250ms"), 250 * kMillisecond);
  EXPECT_EQ(*ParseSimTime("1.5s"), 1500 * kMillisecond);
  EXPECT_EQ(*ParseSimTime("7us"), 7);
  EXPECT_EQ(*ParseSimTime("2m"), 2 * kMinute);
}

TEST(ChaosTimeTest, RejectsGarbage) {
  EXPECT_FALSE(ParseSimTime("10").ok());        // no unit
  EXPECT_FALSE(ParseSimTime("10parsecs").ok());  // unknown unit
  EXPECT_FALSE(ParseSimTime("-5s").ok());        // negative
  EXPECT_FALSE(ParseSimTime("s").ok());          // no magnitude
}

TEST(ChaosTimeTest, FormatRoundTrips) {
  for (SimTime t : {SimTime{0}, 7 * kMicrosecond, 250 * kMillisecond,
                    10 * kSecond, 90 * kSecond}) {
    EXPECT_EQ(*ParseSimTime(FormatSimTime(t)), t) << FormatSimTime(t);
  }
}

// ---------------------------------------------------------------------------
// Selectors.
// ---------------------------------------------------------------------------

TEST(NodeSelectorTest, ParsesAllForms) {
  EXPECT_EQ(*NodeSelector::Parse("slave:2"),
            NodeSelector::Index(Role::kSlave, 2));
  EXPECT_EQ(*NodeSelector::Parse("slaves:*"), NodeSelector::All(Role::kSlave));
  EXPECT_EQ(NodeSelector::Parse("slaves:odd")->pick, NodeSelector::Pick::kOdd);
  EXPECT_EQ(NodeSelector::Parse("slaves:even")->pick,
            NodeSelector::Pick::kEven);
  EXPECT_EQ(*NodeSelector::Parse("masters:*"),
            NodeSelector::All(Role::kMaster));
  EXPECT_EQ(*NodeSelector::Parse("auditor:0"),
            NodeSelector::Index(Role::kAuditor, 0));
  EXPECT_EQ(*NodeSelector::Parse("clients:*"),
            NodeSelector::All(Role::kClient));
  EXPECT_EQ(*NodeSelector::Parse("all"), NodeSelector::Everything());
  EXPECT_EQ(*NodeSelector::Parse("random:3"), NodeSelector::RandomSlaves(3));
}

TEST(NodeSelectorTest, RejectsBadSelectors) {
  EXPECT_FALSE(NodeSelector::Parse("gremlins:*").ok());
  EXPECT_FALSE(NodeSelector::Parse("slave").ok());     // missing pick
  EXPECT_FALSE(NodeSelector::Parse("slave:-1").ok());  // negative index
  EXPECT_FALSE(NodeSelector::Parse("random:0").ok());  // k must be >= 1
  EXPECT_FALSE(NodeSelector::Parse("slave:first").ok());
}

TEST(NodeSelectorTest, ToStringRoundTrips) {
  for (const char* text : {"slave:2", "slaves:*", "slaves:odd", "slaves:even",
                           "masters:*", "master:1", "auditors:*", "clients:*",
                           "all", "random:3"}) {
    auto sel = NodeSelector::Parse(text);
    ASSERT_TRUE(sel.ok()) << text;
    EXPECT_EQ(sel->ToString(), text);
  }
}

// ---------------------------------------------------------------------------
// Scenario parsing.
// ---------------------------------------------------------------------------

TEST(ScenarioParseTest, ParsesTheAcceptanceScenario) {
  auto scenario = ParseScenario(
      "at 10s set_behavior slave:2 lie_probability=0.2; "
      "at 40s partition slave:2 master:*; at 60s heal all");
  ASSERT_TRUE(scenario.ok());
  ASSERT_EQ(scenario->events.size(), 3u);
  EXPECT_EQ(scenario->events[0].at, 10 * kSecond);
  EXPECT_EQ(scenario->events[0].type, ChaosEvent::Type::kSetBehavior);
  EXPECT_EQ(scenario->events[0].patch.lie_probability, 0.2);
  EXPECT_EQ(scenario->events[1].type, ChaosEvent::Type::kPartition);
  EXPECT_EQ(scenario->events[1].b, NodeSelector::All(Role::kMaster));
  EXPECT_EQ(scenario->events[2].type, ChaosEvent::Type::kHealAll);
}

TEST(ScenarioParseTest, RoundTripsThroughToString) {
  const char* kTexts[] = {
      "at 10s crash slave:2",
      "at 1500ms restart slaves:odd",
      "at 5s partition slaves:* masters:*; at 20s heal slaves:* masters:*",
      "at 3s heal all",
      "at 2s set_link slave:0 master:0 latency=40ms jitter=10ms loss=0.1",
      "at 8s set_behavior slaves:even lie_probability=0.3 "
      "serve_despite_stale=true",
      "at 4s burst_writes clients:* count=25",
      "at 6s pause_auditor auditor:0; at 9s resume_auditor auditors:*",
      "at 7s crash random:2",
  };
  for (const char* text : kTexts) {
    auto first = ParseScenario(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = ParseScenario(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(*first, *second) << text;
  }
}

TEST(ScenarioParseTest, SortsOutOfOrderStatements) {
  auto scenario =
      ParseScenario("at 30s heal all; at 10s crash slave:0; at 20s restart "
                    "slave:0");
  ASSERT_TRUE(scenario.ok());
  ASSERT_EQ(scenario->events.size(), 3u);
  EXPECT_EQ(scenario->events[0].at, 10 * kSecond);
  EXPECT_EQ(scenario->events[1].at, 20 * kSecond);
  EXPECT_EQ(scenario->events[2].at, 30 * kSecond);
}

TEST(ScenarioParseTest, EmptyAndBlankInputsAreEmptyScenarios) {
  EXPECT_TRUE(ParseScenario("")->empty());
  EXPECT_TRUE(ParseScenario("  ;  ; ")->empty());
}

TEST(ScenarioParseTest, RejectsBadInput) {
  const char* kBad[] = {
      "crash slave:0",                              // missing "at <time>"
      "at 10s",                                     // missing verb
      "at 10s explode slave:0",                     // unknown verb
      "at 10s crash",                               // missing selector
      "at 10s crash slave:0 slave:1",               // too many selectors
      "at 10s partition slave:0",                   // one selector
      "at 10s set_behavior master:0 lie_probability=0.5",  // wrong role
      "at 10s set_behavior slave:0",                // no fields
      "at 10s set_behavior slave:0 lie_probability=1.5",   // out of [0,1]
      "at 10s set_behavior slave:0 charisma=0.9",   // unknown field
      "at 10s set_behavior slave:0 ignore_updates=maybe",  // bad bool
      "at 10s set_link slave:0 master:0 latency=fast",
      "at 10s set_link slave:0 master:0 loss=2",
      "at 10s burst_writes slave:0",                // wrong role
      "at 10s burst_writes clients:* count=0",
      "at 10s pause_auditor slave:0",               // wrong role
      "at tomorrow crash slave:0",                  // bad time
  };
  for (const char* text : kBad) {
    EXPECT_FALSE(ParseScenario(text).ok()) << text;
  }
}

TEST(ScenarioBuilderTest, BuildsAndSortsLikeTheParser) {
  Scenario built = ScenarioBuilder()
                       .At(40 * kSecond)
                       .Partition(NodeSelector::Index(Role::kSlave, 2),
                                  NodeSelector::All(Role::kMaster))
                       .At(10 * kSecond)
                       .SetBehavior(NodeSelector::Index(Role::kSlave, 2),
                                    BehaviorPatch{.lie_probability = 0.2})
                       .At(60 * kSecond)
                       .HealAll()
                       .Build();
  auto parsed = ParseScenario(
      "at 10s set_behavior slave:2 lie_probability=0.2; "
      "at 40s partition slave:2 masters:*; at 60s heal all");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(built, *parsed);
  EXPECT_EQ(built.ToString(), parsed->ToString());
}

// ---------------------------------------------------------------------------
// Controller: selector resolution and event application.
// ---------------------------------------------------------------------------

ClusterConfig FastConfig(uint64_t seed = 1) {
  ClusterConfig config;
  config.seed = seed;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 50 * kMillisecond;
  config.corpus.n_items = 50;
  config.mix.n_items = 50;
  config.write_gen.n_items = 50;
  return config;
}

ChaosController MakeController(Cluster& cluster, const std::string& text) {
  auto scenario = ParseScenario(text);
  EXPECT_TRUE(scenario.ok());
  return ChaosController(&cluster, *scenario,
                         DefaultCheckers(cluster.config()));
}

TEST(ChaosControllerTest, ResolvesSelectorsToNodeIds) {
  Cluster cluster(FastConfig());  // 2 masters, 4 slaves, 1 auditor, 4 clients
  ChaosController controller(&cluster, Scenario{}, {});

  EXPECT_EQ(controller.Resolve(NodeSelector::Index(Role::kSlave, 1)),
            (std::vector<NodeId>{cluster.slave(1).id()}));
  EXPECT_EQ(controller.Resolve(NodeSelector::All(Role::kMaster)),
            (std::vector<NodeId>{cluster.master(0).id(),
                                 cluster.master(1).id()}));
  EXPECT_EQ(controller.Resolve(*NodeSelector::Parse("slaves:odd")),
            (std::vector<NodeId>{cluster.slave(1).id(),
                                 cluster.slave(3).id()}));
  EXPECT_EQ(controller.Resolve(*NodeSelector::Parse("slaves:even")),
            (std::vector<NodeId>{cluster.slave(0).id(),
                                 cluster.slave(2).id()}));
  // Out-of-range index resolves to nothing rather than crashing.
  EXPECT_TRUE(controller.Resolve(NodeSelector::Index(Role::kSlave, 99))
                  .empty());
  // "all" covers every node in the deployment.
  EXPECT_EQ(controller.Resolve(NodeSelector::Everything()).size(),
            cluster.net().node_count());

  std::vector<NodeId> random = controller.Resolve(NodeSelector::RandomSlaves(2));
  EXPECT_EQ(random.size(), 2u);
  EXPECT_EQ(std::set<NodeId>(random.begin(), random.end()).size(), 2u);
  std::set<NodeId> slaves;
  for (int s = 0; s < cluster.num_slaves(); ++s) {
    slaves.insert(cluster.slave(s).id());
  }
  for (NodeId id : random) {
    EXPECT_TRUE(slaves.count(id)) << id;
  }
  // Asking for more than exist returns everyone, once.
  EXPECT_EQ(controller.Resolve(NodeSelector::RandomSlaves(99)).size(),
            static_cast<size_t>(cluster.num_slaves()));
}

TEST(ChaosControllerTest, CrashAndRestartFollowTheTimeline) {
  Cluster cluster(FastConfig());
  ChaosController controller =
      MakeController(cluster, "at 2s crash slave:0; at 6s restart slave:0");
  controller.Install();
  NodeId victim = cluster.slave(0).id();

  cluster.RunFor(1 * kSecond);
  EXPECT_TRUE(cluster.net().node(victim)->up());
  cluster.RunFor(3 * kSecond);  // now at 4s
  EXPECT_FALSE(cluster.net().node(victim)->up());
  cluster.RunFor(4 * kSecond);  // now at 8s
  EXPECT_TRUE(cluster.net().node(victim)->up());
}

TEST(ChaosControllerTest, SetBehaviorFlipsASlaveMidRun) {
  Cluster cluster(FastConfig());
  ChaosController controller = MakeController(
      cluster, "at 5s set_behavior slave:0 lie_probability=1.0");
  controller.Install();

  cluster.RunFor(4 * kSecond);
  EXPECT_EQ(cluster.slave(0).behavior().lie_probability, 0.0);
  EXPECT_EQ(cluster.slave(0).metrics().lies_told, 0u);
  cluster.RunFor(8 * kSecond);
  EXPECT_EQ(cluster.slave(0).behavior().lie_probability, 1.0);
  EXPECT_GT(cluster.slave(0).metrics().lies_told, 0u);
}

TEST(ChaosControllerTest, PauseAndResumeAuditor) {
  Cluster cluster(FastConfig());
  ChaosController controller = MakeController(
      cluster, "at 2s pause_auditor auditor:0; at 8s resume_auditor all");
  controller.Install();

  cluster.RunFor(5 * kSecond);
  EXPECT_TRUE(cluster.auditor(0).paused());
  cluster.RunFor(10 * kSecond);
  EXPECT_FALSE(cluster.auditor(0).paused());
  // The parked backlog drained: audits happened after the resume.
  EXPECT_GT(cluster.auditor(0).metrics().pledges_audited, 0u);
}

TEST(ChaosControllerTest, PartitionAndHealAllReflectInTheNetwork) {
  Cluster cluster(FastConfig());
  ChaosController controller = MakeController(
      cluster, "at 2s partition slave:0 masters:*; at 6s heal all");
  controller.Install();

  cluster.RunFor(4 * kSecond);
  EXPECT_EQ(cluster.net().active_partitions(), 2u);  // one per master
  EXPECT_TRUE(cluster.net().IsPartitioned(cluster.slave(0).id(),
                                          cluster.master(0).id()));
  cluster.RunFor(4 * kSecond);
  EXPECT_EQ(cluster.net().active_partitions(), 0u);
}

// ---------------------------------------------------------------------------
// Invariant checkers on an honest cluster.
// ---------------------------------------------------------------------------

TEST(InvariantTest, HonestClusterPassesAllInvariants) {
  Cluster cluster(FastConfig());
  ChaosController controller = MakeController(cluster, "");
  controller.Install();
  cluster.RunFor(30 * kSecond);
  controller.Finish();
  for (const Violation& v : controller.violations()) {
    ADD_FAILURE() << v.ToString();
  }
  EXPECT_GT(cluster.ComputeTotals().reads_accepted, 0u);
  // The auditor's paced commits must keep its version numbering aligned
  // with the masters': on a healthy run no forwarded pledge should name a
  // version the auditor has already finalized and pruned.
  EXPECT_EQ(cluster.auditor(0).metrics().pledges_version_pruned, 0u);
  EXPECT_LE(cluster.auditor(0).head_version(), cluster.master(0).version());
}

TEST(InvariantTest, LyingSlaveIsCaughtByEvidenceNotSilently) {
  // The acceptance scenario: a slave flips malicious mid-run, later gets
  // partitioned from the masters, then the network heals. Every wrong
  // accept must be matched by double-check or audit evidence — the
  // invariants hold precisely because the protocol catches the liar.
  Cluster cluster(FastConfig(3));
  ChaosController controller = MakeController(
      cluster,
      "at 5s set_behavior slave:0 lie_probability=0.5; "
      "at 20s partition slave:0 masters:*; at 30s heal all");
  controller.Install();
  cluster.RunFor(60 * kSecond);
  controller.Finish();
  for (const Violation& v : controller.violations()) {
    ADD_FAILURE() << v.ToString();
  }
  // The slave did lie, and the protocol produced evidence and punishment.
  EXPECT_GT(cluster.slave(0).metrics().lies_told, 0u);
  Cluster::Totals totals = cluster.ComputeTotals();
  EXPECT_GT(totals.double_check_mismatches + totals.auditor_mismatches, 0u);
  EXPECT_TRUE(cluster.ExcludedByAnyMaster(cluster.slave(0).id()));
}

// ---------------------------------------------------------------------------
// Each checker fires on a deliberately broken cluster.
// ---------------------------------------------------------------------------

// A cluster whose detection machinery is fully disabled: the lying slave
// is never double-checked, never audited, never excluded.
ClusterConfig BlindConfig(uint64_t seed = 1) {
  ClusterConfig config = FastConfig(seed);
  config.params.audit_enabled = false;
  config.params.double_check_probability = 0.0;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 0.8;
    }
    return b;
  };
  return config;
}

template <typename Checker, typename... Args>
std::vector<std::unique_ptr<InvariantChecker>> Only(Args&&... args) {
  std::vector<std::unique_ptr<InvariantChecker>> checkers;
  checkers.push_back(std::make_unique<Checker>(std::forward<Args>(args)...));
  return checkers;
}

TEST(InvariantTest, NoWrongReadUndetectedFiresOnBlindCluster) {
  Cluster cluster(BlindConfig());
  ChaosController controller(&cluster, Scenario{},
                             Only<NoWrongReadUndetected>(2 * kSecond));
  controller.Install();
  cluster.RunFor(20 * kSecond);
  controller.Finish();
  std::vector<Violation> violations = controller.violations();
  ASSERT_EQ(violations.size(), 1u);
  const Violation& v = violations[0];
  EXPECT_EQ(v.invariant, "NoWrongReadUndetected");
  EXPECT_EQ(v.seed, cluster.config().seed);
  EXPECT_GT(v.time, 0);
  EXPECT_NE(v.evidence.find("wrong read accepted"), std::string::npos);
}

TEST(InvariantTest, DetectionLatencyBoundFiresWhenNoMasterExcludes) {
  Cluster cluster(BlindConfig());
  ChaosController controller(&cluster, Scenario{},
                             Only<DetectionLatencyBound>(2 * kSecond));
  controller.Install();
  cluster.RunFor(20 * kSecond);
  controller.Finish();
  ASSERT_EQ(controller.violations().size(), 1u);
  EXPECT_EQ(controller.violations()[0].invariant, "DetectionLatencyBound");
  EXPECT_NE(controller.violations()[0].evidence.find("consistent lies"),
            std::string::npos);
}

TEST(InvariantTest, ExclusionPermanentFiresOnReadAfterExclusion) {
  // Run a real cluster until the lying slave is excluded, then feed the
  // checker a synthetic accepted read from the excluded slave, dated after
  // the grace window.
  ClusterConfig config = FastConfig(2);
  config.params.double_check_probability = 0.5;  // fast catch
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 0.8;
    }
    return b;
  };
  Cluster cluster(config);
  NodeId liar = cluster.slave(0).id();
  for (int i = 0; i < 60 && !cluster.ExcludedByAnyMaster(liar); ++i) {
    cluster.RunFor(1 * kSecond);
  }
  ASSERT_TRUE(cluster.ExcludedByAnyMaster(liar));

  ExclusionPermanent checker(/*grace=*/1 * kSecond);
  std::vector<Cluster::AcceptedRead> reads;
  ChaosContext ctx{&cluster, config.seed, 250 * kMillisecond, &reads};
  checker.OnTick(ctx);  // observes the exclusion
  EXPECT_FALSE(checker.violated());

  cluster.RunFor(5 * kSecond);  // move past the grace window
  reads.push_back(Cluster::AcceptedRead{.client_index = 0,
                                        .slave = liar,
                                        .accepted_at = cluster.sim().Now()});
  checker.OnTick(ctx);
  ASSERT_TRUE(checker.violated());
  EXPECT_NE(checker.violation()->evidence.find("was excluded"),
            std::string::npos);
}

TEST(InvariantTest, AvailabilityFloorFiresWhenAllSlavesCrash) {
  Cluster cluster(FastConfig());
  ChaosController controller(
      &cluster, *ParseScenario("at 5s crash slaves:*"),
      Only<AvailabilityFloor>(/*min_accepts_per_second=*/0.5,
                              /*warmup=*/2 * kSecond,
                              /*min_window=*/5 * kSecond));
  controller.Install();
  cluster.RunFor(40 * kSecond);
  controller.Finish();
  ASSERT_EQ(controller.violations().size(), 1u);
  EXPECT_EQ(controller.violations()[0].invariant, "AvailabilityFloor");
}

TEST(InvariantTest, TokenFreshnessFiresWithImpossiblyTightBound) {
  // Any real delivery takes more than a microsecond, so a 1us bound makes
  // the very first accepted read a violation — proving the checker reads
  // the token age correctly.
  Cluster cluster(FastConfig());
  ChaosController controller(&cluster, Scenario{},
                             Only<TokenFreshness>(1 * kMicrosecond));
  controller.Install();
  cluster.RunFor(10 * kSecond);
  controller.Finish();
  ASSERT_EQ(controller.violations().size(), 1u);
  EXPECT_EQ(controller.violations()[0].invariant, "TokenFreshness");
}

// ---------------------------------------------------------------------------
// Seed sweep.
// ---------------------------------------------------------------------------

TEST(SeedSweepTest, ReportsPerSeedVerdictsAndIsDeterministic) {
  ClusterConfig config = FastConfig();
  auto scenario =
      ParseScenario("at 3s set_behavior slave:0 lie_probability=0.5");
  ASSERT_TRUE(scenario.ok());
  SweepOptions options;
  options.num_seeds = 3;
  options.duration = 20 * kSecond;

  SweepReport first = RunSeedSweep(config, *scenario, options);
  SweepReport second = RunSeedSweep(config, *scenario, options);

  ASSERT_EQ(first.seeds.size(), 3u);
  EXPECT_EQ(first.invariants.size(), 5u);
  EXPECT_EQ(first.seeds[0].seed, 1u);
  EXPECT_EQ(first.seeds[2].seed, 3u);
  EXPECT_EQ(first.Summary(), second.Summary());
  for (const SeedVerdict& seed : first.seeds) {
    EXPECT_GT(seed.accepted_reads, 0u);
  }
}

TEST(SeedSweepTest, ParallelSweepIsByteIdenticalPlain) {
  // The determinism gate for the parallel sweep engine: report bytes must
  // not depend on the number of worker threads. Plain run, no scenario.
  ClusterConfig config = FastConfig();
  SweepOptions options;
  options.num_seeds = 8;
  options.duration = 10 * kSecond;

  options.jobs = 1;
  SweepReport serial = RunSeedSweep(config, Scenario{}, options);
  options.jobs = 8;
  SweepReport parallel = RunSeedSweep(config, Scenario{}, options);

  ASSERT_EQ(parallel.seeds.size(), 8u);
  EXPECT_EQ(serial.invariants, parallel.invariants);
  EXPECT_EQ(serial.Summary(), parallel.Summary());
  for (size_t i = 0; i < serial.seeds.size(); ++i) {
    EXPECT_EQ(serial.seeds[i].seed, parallel.seeds[i].seed);
    EXPECT_EQ(serial.seeds[i].accepted_reads, parallel.seeds[i].accepted_reads);
  }
}

TEST(SeedSweepTest, ParallelSweepIsByteIdenticalWithChaosScenario) {
  ClusterConfig config = FastConfig();
  auto scenario = ParseScenario(
      "at 2s set_behavior slave:0 lie_probability=0.5; "
      "at 4s partition slave:1 master:*; at 7s heal all");
  ASSERT_TRUE(scenario.ok());
  SweepOptions options;
  options.num_seeds = 6;
  options.duration = 12 * kSecond;

  options.jobs = 1;
  SweepReport serial = RunSeedSweep(config, *scenario, options);
  options.jobs = 8;
  SweepReport parallel = RunSeedSweep(config, *scenario, options);

  EXPECT_EQ(serial.Summary(), parallel.Summary());
  // jobs beyond num_seeds must clamp, not crash or reorder.
  options.jobs = 64;
  SweepReport overcommitted = RunSeedSweep(config, *scenario, options);
  EXPECT_EQ(serial.Summary(), overcommitted.Summary());
}

TEST(SeedSweepTest, BlindClusterSweepPinsFirstViolatingSeed) {
  ClusterConfig config = BlindConfig();
  SweepOptions options;
  options.num_seeds = 2;
  options.duration = 15 * kSecond;
  CheckerFactory factory = [](const ClusterConfig&) {
    return Only<NoWrongReadUndetected>(2 * kSecond);
  };

  SweepReport report = RunSeedSweep(config, Scenario{}, options, factory);
  EXPECT_FALSE(report.all_passed());
  EXPECT_GT(report.failures("NoWrongReadUndetected"), 0);
  const Violation* v = report.first_violation("NoWrongReadUndetected");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->seed, 1u);  // the first seed in the sweep
  EXPECT_NE(report.Summary().find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace sdr
