// Tests for the two related-work baselines: state signing (Merkle-proof
// point reads, trusted-host dynamic queries) and SMR quorum reads.
#include <gtest/gtest.h>

#include "src/baseline/smr_quorum.h"
#include "src/baseline/state_signing.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/workload/workload.h"

namespace sdr {
namespace {

struct SsHarness {
  explicit SsHarness(uint64_t seed, int n_items = 50)
      : sim(seed), net(&sim, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0}) {
    Rng rng(seed);
    KeyPair master_key = KeyPair::Generate(SignatureScheme::kEd25519, rng);

    SsMaster::Options mo;
    mo.key_pair = master_key;
    master = std::make_unique<SsMaster>(mo);
    net.AddNode(master.get());

    SsSlave::Options so;
    slave = std::make_unique<SsSlave>(so);
    net.AddNode(slave.get());
    master->AddSlave(slave->id());

    CorpusConfig corpus;
    corpus.n_items = static_cast<size_t>(n_items);
    content = BuildCatalogCorpus(corpus, rng);
    master->SetContent(content);
    MerkleTree tree = MerkleTree::Build(content);
    Signer signer(master_key);
    slave->SetContent(content, MakeSignedRoot(signer, tree.root(), 0, 0));

    SsClient::Options co;
    co.master_public_key = master_key.public_key;
    co.master = master->id();
    co.slave = slave->id();
    client = std::make_unique<SsClient>(co);
    net.AddNode(client.get());

    net.StartAll();
  }

  Simulator sim;
  Network net;
  DocumentStore content;
  std::unique_ptr<SsMaster> master;
  std::unique_ptr<SsSlave> slave;
  std::unique_ptr<SsClient> client;
};

TEST(StateSigningTest, PointReadVerifiedAtSlave) {
  SsHarness h(1);
  bool done = false;
  h.client->IssueRead(Query::Get(ItemKey(3)), [&](bool ok) {
    done = true;
    EXPECT_TRUE(ok);
  });
  h.sim.RunUntil(2 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(h.client->reads_accepted(), 1u);
  EXPECT_EQ(h.client->reads_to_slave(), 1u);
  EXPECT_EQ(h.client->reads_to_master(), 0u);
  EXPECT_EQ(h.client->proof_failures(), 0u);
}

TEST(StateSigningTest, DynamicQueryMustGoToTrustedMaster) {
  SsHarness h(2);
  h.client->IssueRead(Query::Grep("widget", "item/", "item0"));
  h.client->IssueRead(Query::Aggregate(QueryKind::kSum, "price/", "price0"));
  h.sim.RunUntil(2 * kSecond);
  EXPECT_EQ(h.client->reads_to_master(), 2u);
  EXPECT_EQ(h.master->dynamic_queries_served(), 2u);
  EXPECT_EQ(h.client->reads_accepted(), 2u);
  EXPECT_EQ(h.slave->point_reads_served(), 0u);
}

TEST(StateSigningTest, MissingKeyEscalatesToMaster) {
  SsHarness h(3);
  bool done = false;
  h.client->IssueRead(Query::Get("item/99999"), [&](bool ok) {
    done = true;
    EXPECT_TRUE(ok);
  });
  h.sim.RunUntil(2 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(h.client->reads_to_master(), 1u);  // escalation
}

TEST(StateSigningTest, WriteUpdatesRootAndProofsStillVerify) {
  SsHarness h(4);
  h.master->CommitWrite({WriteOp::Put(PriceKey(3), "777")});
  h.sim.RunUntil(2 * kSecond);
  bool got = false;
  h.client->IssueRead(Query::Get(PriceKey(3)), [&](bool ok) {
    got = true;
    EXPECT_TRUE(ok);
  });
  h.sim.RunUntil(4 * kSecond);
  EXPECT_TRUE(got);
  EXPECT_EQ(h.client->proof_failures(), 0u);
  EXPECT_EQ(h.master->version(), 1u);
}

TEST(StateSigningTest, TamperedSlaveContentFailsProof) {
  SsHarness h(5);
  // Maliciously alter the slave's content and tree: the forged tree root
  // will not match the master-signed root.
  DocumentStore tampered = h.content;
  tampered.Apply(WriteOp::Put(PriceKey(0), "1"));
  MerkleTree bad_tree = MerkleTree::Build(tampered);
  Rng rng(55);
  KeyPair fake = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer fake_signer(fake);
  h.slave->SetContent(tampered,
                      MakeSignedRoot(fake_signer, bad_tree.root(), 0, 0));
  bool callback_ok = true;
  h.client->IssueRead(Query::Get(PriceKey(0)),
                      [&](bool ok) { callback_ok = ok; });
  h.sim.RunUntil(2 * kSecond);
  EXPECT_EQ(h.client->proof_failures(), 1u);
  EXPECT_EQ(h.client->reads_accepted(), 0u);
}

struct QrHarness {
  QrHarness(uint64_t seed, int n_replicas, int f, int n_colluders)
      : sim(seed),
        net(&sim, LinkModel{5 * kMillisecond, 15 * kMillisecond, 0.0}) {
    Rng rng(seed);
    CorpusConfig corpus;
    corpus.n_items = 50;
    content = BuildCatalogCorpus(corpus, rng);

    QrClient::Options co;
    co.f = f;
    for (int i = 0; i < n_replicas; ++i) {
      QrReplica::Options ro;
      ro.colluding = i < n_colluders;
      replicas.push_back(std::make_unique<QrReplica>(ro));
      co.replicas.push_back(net.AddNode(replicas.back().get()));
      replicas.back()->SetContent(content);
    }
    client = std::make_unique<QrClient>(co);
    net.AddNode(client.get());
    net.StartAll();
  }

  Simulator sim;
  Network net;
  DocumentStore content;
  std::vector<std::unique_ptr<QrReplica>> replicas;
  std::unique_ptr<QrClient> client;
};

TEST(SmrQuorumTest, HonestQuorumAgrees) {
  QrHarness h(1, 5, /*f=*/1, /*colluders=*/0);
  bool done = false;
  h.client->IssueRead(Query::Get(ItemKey(2)),
                      [&](bool ok, const QueryResult& result) {
                        done = true;
                        EXPECT_TRUE(ok);
                        EXPECT_EQ(result.rows.size(), 1u);
                      });
  h.sim.RunUntil(2 * kSecond);
  EXPECT_TRUE(done);
  EXPECT_EQ(h.client->reads_accepted(), 1u);
  // Exactly 2f+1 = 3 replicas executed the query.
  uint64_t executed = 0;
  for (const auto& rep : h.replicas) {
    executed += rep->reads_executed();
  }
  EXPECT_EQ(executed, 3u);
}

TEST(SmrQuorumTest, FColludersCannotPassWrongAnswer) {
  // Replicas 0..f-1 collude; quorum is 2f+1 with f+1 needed to accept, so
  // the honest majority always outvotes them.
  for (int f = 1; f <= 3; ++f) {
    QrHarness h(100 + f, 2 * f + 1, f, /*colluders=*/f);
    QueryExecutor truth;
    int wrong = 0;
    for (int i = 0; i < 20; ++i) {
      Query q = Query::Get(ItemKey(static_cast<size_t>(i)));
      auto expected = truth.Execute(h.content, q);
      ASSERT_TRUE(expected.ok());
      h.client->IssueRead(q, [&, exp = expected->result](
                                 bool ok, const QueryResult& result) {
        if (ok && !(result == exp)) {
          ++wrong;
        }
      });
    }
    h.sim.RunUntil(10 * kSecond);
    EXPECT_EQ(wrong, 0) << "f=" << f;
    EXPECT_EQ(h.client->reads_accepted(), 20u) << "f=" << f;
  }
}

TEST(SmrQuorumTest, MoreThanFColludersDefeatTheQuorum) {
  // f+1 colluders in a 2f+1 quorum CAN pass a wrong answer — the paper's
  // point that quorum systems buy safety with resources, not certainty.
  QrHarness h(7, 3, /*f=*/1, /*colluders=*/2);
  QueryExecutor truth;
  Query q = Query::Get(ItemKey(1));
  auto expected = truth.Execute(h.content, q);
  ASSERT_TRUE(expected.ok());
  int wrong = 0;
  for (int i = 0; i < 10; ++i) {
    h.client->IssueRead(q, [&, exp = expected->result](bool ok,
                                                       const QueryResult& r) {
      if (ok && !(r == exp)) {
        ++wrong;
      }
    });
  }
  h.sim.RunUntil(10 * kSecond);
  EXPECT_GT(wrong, 0);
}

TEST(SmrQuorumTest, LatencySetBySlowestQuorumMember) {
  // With one very slow replica inside the quorum, acceptance still needs
  // f+1 matching replies; make the fast path impossible by using f+1 = 3
  // of 3 replicas... (f=1, quorum=3, need 2 matches: the two fast ones
  // suffice). So instead compare latency with an added slow link.
  QrHarness fast(8, 3, 1, 0);
  QrHarness slow(8, 3, 1, 0);
  // Make replica 0 (always in the quorum) extremely slow in `slow`.
  slow.net.SetLinkSymmetric(slow.client->id(), slow.replicas[0]->id(),
                            LinkModel{500 * kMillisecond, 0, 0.0});
  // And replica 1 too — now only one fast member remains, so the quorum
  // must wait for a slow one.
  slow.net.SetLinkSymmetric(slow.client->id(), slow.replicas[1]->id(),
                            LinkModel{500 * kMillisecond, 0, 0.0});
  for (int i = 0; i < 10; ++i) {
    fast.client->IssueRead(Query::Get(ItemKey(0)));
    slow.client->IssueRead(Query::Get(ItemKey(0)));
  }
  fast.sim.RunUntil(20 * kSecond);
  slow.sim.RunUntil(20 * kSecond);
  ASSERT_EQ(fast.client->reads_accepted(), 10u);
  ASSERT_EQ(slow.client->reads_accepted(), 10u);
  EXPECT_GT(slow.client->latency_us().Median(),
            5 * fast.client->latency_us().Median());
}

}  // namespace
}  // namespace sdr
