// Tests for the Section 4 variants: the multi-slave (collusion-forcing)
// read client and per-read security levels via double-check probability.
#include <gtest/gtest.h>

#include "src/core/cluster.h"
#include "src/core/multiread_client.h"

namespace sdr {
namespace {

struct VariantHarness {
  VariantHarness(int k, int colluders, uint64_t seed,
                 double double_check_p = 0.02) {
    ClusterConfig config;
    config.seed = seed;
    config.num_masters = 1;
    config.slaves_per_master = k;
    config.num_clients = 0;
    config.corpus.n_items = 60;
    config.params.scheme = SignatureScheme::kHmacSha256;
    config.params.double_check_probability = double_check_p;
    config.slave_behavior = [colluders](int index) {
      Slave::Behavior b;
      if (index < colluders) {
        b.lie_probability = 1.0;  // deterministic corruption: they collude
      }
      return b;
    };
    config.track_ground_truth = false;
    cluster = std::make_unique<Cluster>(std::move(config));

    MultiReadClient::Options opts;
    opts.params = cluster->config().params;
    opts.slave_certs = cluster->master(0).my_slave_certs();
    opts.master_keys = {
        {cluster->master(0).id(), cluster->master(0).public_key()}};
    opts.master = cluster->master(0).id();
    opts.auditor = cluster->auditor().id();
    client = std::make_unique<MultiReadClient>(opts);
    cluster->net().AddNode(client.get());
    client->Start();

    truth = std::make_unique<QueryExecutor>();
    client->on_accept = [this](const Query& query, uint64_t version,
                               const QueryResult& result) {
      auto store = cluster->master(0).oplog().MaterializeAt(version);
      ASSERT_TRUE(store.ok());
      auto expected = truth->Execute(*store, query);
      ASSERT_TRUE(expected.ok());
      if (!(expected->result == result)) {
        ++wrong;
      }
    };
    cluster->RunFor(2 * kSecond);  // arm keep-alives
  }

  void DoReads(int n) {
    for (int i = 0; i < n; ++i) {
      client->IssueRead(Query::Get(ItemKey(static_cast<size_t>(i % 60))));
      cluster->RunFor(200 * kMillisecond);
    }
    cluster->RunFor(5 * kSecond);
  }

  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<MultiReadClient> client;
  std::unique_ptr<QueryExecutor> truth;
  int wrong = 0;
};

TEST(MultiReadTest, HonestSlavesUnanimous) {
  VariantHarness h(3, 0, 1);
  h.DoReads(30);
  EXPECT_EQ(h.client->metrics().reads_accepted, 30u);
  EXPECT_EQ(h.client->metrics().disagreements, 0u);
  EXPECT_EQ(h.wrong, 0);
}

TEST(MultiReadTest, OneLiarAmongThreeForcesDoubleCheckAndLoses) {
  VariantHarness h(3, 1, 2);
  h.DoReads(30);
  const auto& m = h.client->metrics();
  EXPECT_GT(m.disagreements, 0u);
  EXPECT_GT(m.double_checks_sent, 0u);
  EXPECT_GT(m.accusations_sent, 0u);
  EXPECT_EQ(h.wrong, 0);
  EXPECT_GE(h.cluster->master(0).metrics().slaves_excluded, 1u);
  // Reads still complete (via remaining honest slaves / master truth).
  EXPECT_EQ(m.reads_accepted, 30u);
}

TEST(MultiReadTest, MinorityCollusionStillCaught) {
  VariantHarness h(5, 2, 3);
  h.DoReads(30);
  EXPECT_EQ(h.wrong, 0);
  EXPECT_GE(h.cluster->master(0).metrics().slaves_excluded, 2u);
}

TEST(MultiReadTest, FullCollusionDefeatsTheVariant) {
  // If ALL k slaves lie identically, unanimity hides the lie from the
  // fan-out; only the sampled double-check can catch it — the paper's
  // stated limit of the variant.
  VariantHarness h(3, 3, 4, /*double_check_p=*/0.0);
  h.DoReads(30);
  EXPECT_GT(h.wrong, 0);
  EXPECT_EQ(h.client->metrics().disagreements, 0u);
}

TEST(MultiReadTest, DeclinedSlaveDoesNotStallReads) {
  VariantHarness h(3, 1, 5);
  h.DoReads(10);  // gets the liar excluded
  ASSERT_GE(h.cluster->master(0).metrics().slaves_excluded, 1u);
  // Subsequent reads resolve from the two live slaves + a decline, well
  // inside the client timeout.
  uint64_t before = h.client->metrics().reads_accepted;
  SimTime start = h.cluster->sim().Now();
  h.client->IssueRead(Query::Get(ItemKey(1)));
  h.cluster->RunFor(1 * kSecond);
  EXPECT_EQ(h.client->metrics().reads_accepted, before + 1);
  EXPECT_LT(h.cluster->sim().Now() - start, 2 * kSecond);
}

TEST(SecurityLevelTest, SensitiveReadsNeverAcceptLies) {
  // p=1.0 (the "execute only on trusted hosts" end of the dial): with every
  // slave lying and exclusion disabled, the sensitive client still never
  // accepts a wrong answer.
  ClusterConfig config;
  config.seed = 6;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 1;
  config.corpus.n_items = 40;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.double_check_probability = 1.0;
  config.params.exclusion_enabled = false;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 50 * kMillisecond;
  config.slave_behavior = [](int) {
    Slave::Behavior b;
    b.lie_probability = 1.0;
    return b;
  };
  Cluster cluster(config);
  cluster.RunFor(30 * kSecond);
  EXPECT_GT(cluster.client(0).metrics().double_check_mismatches, 100u);
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
}

}  // namespace
}  // namespace sdr
