// Env parity suite: the same protocol workload — closed-loop reads and
// writes against a cluster with one always-lying slave — runs once on the
// deterministic SimEnv substrate (via Cluster) and once on RealEnv over
// loopback TCP (one env + thread per node, exactly how sdrnode deploys),
// and must reach the same protocol outcomes on both:
//
//   - clients complete setup and accept pledge-verified reads,
//   - the lying slave is detected (audit or double-check mismatch),
//   - the SAME slave node id ends up excluded, and stays excluded.
//
// Counters differ (wall time is not sim time); outcomes may not.
#include <gtest/gtest.h>

#include <ctime>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/cluster.h"
#include "src/runtime/deployment.h"
#include "src/runtime/real_env.h"

namespace sdr {
namespace {

// One shared shape for both substrates: 1 master, 1 auditor, 3 slaves,
// 2 clients, slave 0 lies on every read.
constexpr int kLiarIndex = 0;

DeploymentConfig ParityConfig(uint64_t seed) {
  DeploymentConfig dc;
  dc.seed = seed;
  dc.num_masters = 1;
  dc.num_auditors = 1;
  dc.slaves_per_master = 3;
  dc.num_clients = 2;
  dc.corpus.n_items = 30;
  dc.client_think_time = 25 * kMillisecond;
  dc.client_write_fraction = 0.05;
  dc.params.double_check_probability = 0.1;
  return dc;
}

struct Outcome {
  uint64_t reads_accepted = 0;
  uint64_t lies_told = 0;
  uint64_t detections = 0;  // audit mismatches + double-check catches
  bool liar_excluded = false;
  NodeId liar_node = kInvalidNode;
};

Outcome RunOnSimEnv(const DeploymentConfig& dc) {
  ClusterConfig config;
  config.seed = dc.seed;
  config.num_masters = dc.num_masters;
  config.num_auditors = dc.num_auditors;
  config.slaves_per_master = dc.slaves_per_master;
  config.num_clients = dc.num_clients;
  config.corpus = dc.corpus;
  config.params = dc.params;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = dc.client_think_time;
  config.client_write_fraction = dc.client_write_fraction;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == kLiarIndex) {
      b.lie_probability = 1.0;
    }
    return b;
  };

  Cluster cluster(config);
  cluster.RunFor(30 * kSecond);

  Outcome out;
  out.liar_node = cluster.slave(kLiarIndex).id();
  auto totals = cluster.ComputeTotals();
  out.reads_accepted = totals.reads_accepted;
  out.lies_told = totals.lies_told;
  out.detections =
      totals.auditor_mismatches + totals.double_check_mismatches;
  out.liar_excluded = cluster.master(0).IsExcluded(out.liar_node);
  // Permanence: exclusion survives further protocol time.
  cluster.RunFor(10 * kSecond);
  out.liar_excluded =
      out.liar_excluded && cluster.master(0).IsExcluded(out.liar_node);
  return out;
}

// A full in-process deployment on RealEnv: every roster node gets its own
// env (own port, own thread), wired full-mesh over 127.0.0.1 — the same
// topology sdrcluster launches as separate processes, shrunk into one test
// binary so role objects stay inspectable after the run.
Outcome RunOnRealEnv(const DeploymentConfig& dc, bool with_liar,
                     int run_seconds) {
  DeploymentPlan plan = BuildDeployment(dc);
  const NodeId liar_node = plan.slave_ids[kLiarIndex];

  struct RealNode {
    std::unique_ptr<RealEnv> env;
    std::unique_ptr<Directory> directory;
    std::unique_ptr<Master> master;
    std::unique_ptr<Auditor> auditor;
    std::unique_ptr<Slave> slave;
    std::unique_ptr<Client> client;
    Node* node = nullptr;
  };

  std::vector<NodeId> roster;
  roster.push_back(plan.directory_id);
  for (NodeId id : plan.master_ids) roster.push_back(id);
  for (NodeId id : plan.auditor_ids) roster.push_back(id);
  for (NodeId id : plan.slave_ids) roster.push_back(id);
  for (NodeId id : plan.client_ids) roster.push_back(id);

  timespec epoch_ts;
  clock_gettime(CLOCK_REALTIME, &epoch_ts);
  const int64_t epoch_us =
      static_cast<int64_t>(epoch_ts.tv_sec) * 1000000 +
      epoch_ts.tv_nsec / 1000;

  std::vector<RealNode> nodes(roster.size());
  for (size_t i = 0; i < roster.size(); ++i) {
    NodeId id = roster[i];
    RealNode& rn = nodes[i];
    RealEnv::Options eopts;
    eopts.rng_seed = dc.seed * 1000003 + id;
    eopts.epoch_realtime_us = epoch_us;
    // Clients wait for the serving fleet's sockets to come up, mirroring
    // sdrcluster's launch staggering.
    if (plan.KindOf(id) == NodeKind::kClient) {
      eopts.start_delay = 300 * kMillisecond;
    }
    rn.env = std::make_unique<RealEnv>(eopts);

    switch (plan.KindOf(id)) {
      case NodeKind::kDirectory:
        rn.directory = std::make_unique<Directory>();
        rn.directory->Publish(plan.content.content_public_key,
                              plan.master_certs);
        rn.node = rn.directory.get();
        break;
      case NodeKind::kMaster: {
        int index = plan.RoleIndexOf(id);
        rn.master = std::make_unique<Master>(MasterOptionsFor(plan, index));
        for (size_t s = 0; s < plan.slave_ids.size(); ++s) {
          if (plan.OwnerMasterOf(static_cast<int>(s)) == index) {
            rn.master->AddSlave(plan.slave_certs[s]);
          }
        }
        rn.master->SetBaseContent(plan.base);
        rn.node = rn.master.get();
        break;
      }
      case NodeKind::kAuditor:
        rn.auditor = std::make_unique<Auditor>(
            AuditorOptionsFor(plan, plan.RoleIndexOf(id)));
        rn.auditor->SetBaseContent(plan.base);
        rn.node = rn.auditor.get();
        break;
      case NodeKind::kSlave: {
        int index = plan.RoleIndexOf(id);
        Slave::Options sopts = SlaveOptionsFor(plan, index);
        if (with_liar && index == kLiarIndex) {
          sopts.behavior.lie_probability = 1.0;
        }
        rn.slave = std::make_unique<Slave>(std::move(sopts));
        rn.slave->SetBaseContent(plan.base);
        rn.node = rn.slave.get();
        break;
      }
      case NodeKind::kClient:
        rn.client = std::make_unique<Client>(ClientOptionsFor(
            plan, plan.RoleIndexOf(id), Client::LoadMode::kClosedLoop));
        rn.node = rn.client.get();
        break;
    }
    rn.env->Attach(rn.node, id);
  }

  // Full mesh over loopback: ports are known post-construction.
  for (size_t i = 0; i < roster.size(); ++i) {
    for (size_t j = 0; j < roster.size(); ++j) {
      if (i != j) {
        nodes[i].env->AddPeer(roster[j], "127.0.0.1",
                              nodes[j].env->listen_port());
      }
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(nodes.size());
  for (RealNode& rn : nodes) {
    threads.emplace_back([&rn] { rn.env->Run(); });
  }

  // With every read a lie, detection needs one audited pledge; give the
  // cluster a generous wall budget, then stop everything and inspect.
  timespec run_ts{run_seconds, 0};
  nanosleep(&run_ts, nullptr);
  for (RealNode& rn : nodes) {
    rn.env->RequestStop();  // cross-thread safe by contract
  }
  for (std::thread& t : threads) {
    t.join();
  }

  Outcome out;
  out.liar_node = liar_node;
  for (RealNode& rn : nodes) {
    if (rn.client != nullptr) {
      const ClientMetrics& cm = rn.client->metrics();
      out.reads_accepted += cm.reads_accepted;
      out.detections += cm.double_check_mismatches;
    }
    if (rn.slave != nullptr) {
      out.lies_told += rn.slave->metrics().lies_told;
    }
    if (rn.auditor != nullptr) {
      out.detections += rn.auditor->metrics().mismatches_found;
    }
    if (rn.master != nullptr) {
      out.liar_excluded =
          out.liar_excluded || rn.master->IsExcluded(liar_node);
    }
  }
  return out;
}

TEST(EnvParityTest, SameWorkloadSameOutcomesOnBothSubstrates) {
  DeploymentConfig dc = ParityConfig(11);

  Outcome sim = RunOnSimEnv(dc);
  Outcome real = RunOnRealEnv(dc, /*with_liar=*/true, /*run_seconds=*/8);

  // Both substrates agree on who the liar is (same roster derivation).
  EXPECT_EQ(sim.liar_node, real.liar_node);

  // Outcome 1: the cluster made verified progress.
  EXPECT_GT(sim.reads_accepted, 0u);
  EXPECT_GT(real.reads_accepted, 0u);

  // Outcome 2: the liar lied and was detected.
  EXPECT_GT(sim.lies_told, 0u);
  EXPECT_GT(real.lies_told, 0u);
  EXPECT_GT(sim.detections, 0u);
  EXPECT_GT(real.detections, 0u);

  // Outcome 3: the same slave node is excluded, permanently.
  EXPECT_TRUE(sim.liar_excluded);
  EXPECT_TRUE(real.liar_excluded);
}

TEST(EnvParityTest, HonestClusterStaysCleanOnRealEnv) {
  // Same shape, nobody lies: reads flow, nothing is detected, nobody is
  // excluded — the false-positive side of parity.
  Outcome real =
      RunOnRealEnv(ParityConfig(12), /*with_liar=*/false, /*run_seconds=*/4);
  EXPECT_GT(real.reads_accepted, 0u);
  EXPECT_EQ(real.lies_told, 0u);
  EXPECT_EQ(real.detections, 0u);
  EXPECT_FALSE(real.liar_excluded);
}

}  // namespace
}  // namespace sdr
