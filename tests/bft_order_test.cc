// Tests for the simplified PBFT-style broadcast used by the lazy-vs-eager
// ablation (E11).
#include <gtest/gtest.h>

#include <memory>

#include "src/broadcast/bft_order.h"
#include "src/sim/network.h"

namespace sdr {
namespace {

class BftMember : public Node {
 public:
  void Init(BftOrderBroadcast::Config config) {
    bcast_ = std::make_unique<BftOrderBroadcast>(
        env(), this, std::move(config),
        [this](NodeId to, const Bytes& payload) {
          env()->Send(to, payload);
        },
        [this](uint64_t seq, NodeId origin, const Bytes& payload) {
          delivered.push_back({seq, origin, payload});
        });
  }
  void Start() override { bcast_->Start(); }
  void HandleMessage(NodeId from, const Payload& payload) override {
    bcast_->OnMessage(from, payload);
  }

  struct Delivery {
    uint64_t seq;
    NodeId origin;
    Bytes payload;
  };
  BftOrderBroadcast& bcast() { return *bcast_; }
  std::vector<Delivery> delivered;

 private:
  std::unique_ptr<BftOrderBroadcast> bcast_;
};

struct BftHarness {
  BftHarness(int n, uint64_t seed, LinkModel link)
      : sim(seed), net(&sim, link) {
    for (int i = 0; i < n; ++i) {
      members.push_back(std::make_unique<BftMember>());
      net.AddNode(members.back().get());
    }
    BftOrderBroadcast::Config config;
    for (const auto& m : members) {
      config.group.push_back(m->id());
    }
    for (auto& m : members) {
      m->Init(config);
    }
    net.StartAll();
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<BftMember>> members;
};

TEST(BftOrderTest, QuorumParameters) {
  BftHarness h(4, 1, LinkModel::Lan());
  EXPECT_EQ(h.members[0]->bcast().f(), 1);
  EXPECT_EQ(h.members[0]->bcast().quorum(), 3);
  BftHarness h7(7, 1, LinkModel::Lan());
  EXPECT_EQ(h7.members[0]->bcast().f(), 2);
  EXPECT_EQ(h7.members[0]->bcast().quorum(), 5);
}

TEST(BftOrderTest, DeliversToAllInOrder) {
  BftHarness h(4, 2, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0});
  h.members[1]->bcast().Broadcast(ToBytes("a"));
  h.members[3]->bcast().Broadcast(ToBytes("b"));
  h.sim.RunUntil(5 * kSecond);
  for (const auto& m : h.members) {
    ASSERT_EQ(m->delivered.size(), 2u) << m->id();
    EXPECT_EQ(m->delivered[0].seq, 1u);
    EXPECT_EQ(m->delivered[1].seq, 2u);
  }
  // Same order everywhere.
  for (const auto& m : h.members) {
    EXPECT_EQ(m->delivered[0].payload, h.members[0]->delivered[0].payload);
    EXPECT_EQ(m->delivered[1].payload, h.members[0]->delivered[1].payload);
  }
}

TEST(BftOrderTest, ToleratesFCrashedReplicas) {
  BftHarness h(4, 3, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0});
  // Crash one non-primary replica (f = 1): the quorum of 3 still commits.
  h.net.SetNodeUp(h.members[3]->id(), false);
  h.members[1]->bcast().Broadcast(ToBytes("survives"));
  h.sim.RunUntil(5 * kSecond);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(h.members[i]->delivered.size(), 1u) << i;
    EXPECT_EQ(ToString(h.members[i]->delivered[0].payload), "survives");
  }
}

TEST(BftOrderTest, SurvivesMessageLossViaRetransmission) {
  BftHarness h(4, 4, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.15});
  for (int i = 0; i < 5; ++i) {
    h.members[i % 4]->bcast().Broadcast(ToBytes("m" + std::to_string(i)));
  }
  h.sim.RunUntil(60 * kSecond);
  // The request retransmission recovers lost requests/pre-prepares for the
  // common case; all live members should converge on the same deliveries.
  size_t count = h.members[0]->delivered.size();
  EXPECT_GE(count, 4u);
  for (const auto& m : h.members) {
    EXPECT_EQ(m->delivered.size(), count) << m->id();
  }
}

TEST(BftOrderTest, QuadraticMessageComplexity) {
  // The paper's argument: agreement including untrusted replicas costs
  // O(n^2) messages per write. Measure messages per delivered payload.
  auto messages_per_write = [](int n) {
    BftHarness h(n, 5, LinkModel{5 * kMillisecond, 0, 0.0});
    const int kWrites = 10;
    for (int i = 0; i < kWrites; ++i) {
      h.members[1]->bcast().Broadcast(ToBytes("w" + std::to_string(i)));
    }
    h.sim.RunUntil(30 * kSecond);
    uint64_t total = 0;
    for (const auto& m : h.members) {
      EXPECT_EQ(m->delivered.size(), static_cast<size_t>(kWrites));
      total += m->bcast().protocol_messages_sent();
    }
    return static_cast<double>(total) / kWrites;
  };
  double at4 = messages_per_write(4);
  double at8 = messages_per_write(8);
  double at16 = messages_per_write(16);
  // Quadratic growth: doubling n should roughly quadruple messages.
  EXPECT_GT(at8 / at4, 2.5);
  EXPECT_GT(at16 / at8, 2.5);
}

TEST(BftOrderTest, DuplicateRequestsAssignedOneSequence) {
  BftHarness h(4, 6, LinkModel{50 * kMillisecond, 30 * kMillisecond, 0.3});
  h.members[2]->bcast().Broadcast(ToBytes("only-once"));
  h.sim.RunUntil(60 * kSecond);
  for (const auto& m : h.members) {
    ASSERT_EQ(m->delivered.size(), 1u) << m->id();
  }
}

}  // namespace
}  // namespace sdr
