// Unit tests for the runtime subsystem: TimerQueue semantics (which must
// mirror the simulator's event queue exactly), the reconnect backoff
// schedule, the node-config grammar, deployment provisioning, and RealEnv
// itself on loopback TCP — including the shared-epoch clock that makes
// freshness timestamps comparable across processes.
#include <gtest/gtest.h>

#include <atomic>
#include <ctime>
#include <thread>
#include <vector>

#include "src/runtime/deployment.h"
#include "src/runtime/real_env.h"
#include "src/runtime/timer_queue.h"

namespace sdr {
namespace {

int64_t RealtimeUs() {
  timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
}

// --- TimerQueue ---

TEST(TimerQueueTest, FiresInDeadlineOrder) {
  TimerQueue q;
  std::vector<int> order;
  q.Schedule(30, [&] { order.push_back(3); });
  q.Schedule(10, [&] { order.push_back(1); });
  q.Schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.next_deadline(), 10);
  EXPECT_EQ(q.RunDue(25), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.RunDue(30), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(TimerQueueTest, SameDeadlineFiresInScheduleOrder) {
  TimerQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&order, i] { order.push_back(i); });
  }
  q.RunDue(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TimerQueueTest, CancelPendingTimerPreventsFiring) {
  TimerQueue q;
  bool fired = false;
  EventId id = q.Schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_EQ(q.RunDue(100), 0u);
  EXPECT_FALSE(fired);
  // Cancelling twice is a no-op that reports failure.
  EXPECT_FALSE(q.Cancel(id));
}

TEST(TimerQueueTest, CancelOnFiredTimerIsNoOp) {
  TimerQueue q;
  int fires = 0;
  EventId a = q.Schedule(10, [&] { ++fires; });
  EventId b = q.Schedule(20, [&] { ++fires; });
  EXPECT_EQ(q.RunDue(10), 1u);
  EXPECT_FALSE(q.Cancel(a));       // already fired
  EXPECT_FALSE(q.Cancel(999999));  // never existed
  EXPECT_FALSE(q.Cancel(0));       // invalid id
  // The unrelated pending timer is untouched.
  EXPECT_TRUE(q.Cancel(b));
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(q.empty());
}

TEST(TimerQueueTest, CallbackMayScheduleAndCancelWithinWindow) {
  TimerQueue q;
  std::vector<int> order;
  EventId victim = q.Schedule(30, [&] { order.push_back(99); });
  q.Schedule(10, [&] {
    order.push_back(1);
    // Within-window insert fires in the same RunDue sweep...
    q.Schedule(15, [&] { order.push_back(2); });
    // ...and a within-window cancel suppresses a due timer.
    q.Cancel(victim);
  });
  EXPECT_EQ(q.RunDue(30), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- Reconnect backoff ---

TEST(ReconnectDelayTest, ExponentialWithCap) {
  const SimTime initial = 100 * kMillisecond;
  const SimTime cap = 5 * kSecond;
  EXPECT_EQ(RealEnv::ReconnectDelay(0, initial, cap), 100 * kMillisecond);
  EXPECT_EQ(RealEnv::ReconnectDelay(1, initial, cap), 200 * kMillisecond);
  EXPECT_EQ(RealEnv::ReconnectDelay(2, initial, cap), 400 * kMillisecond);
  EXPECT_EQ(RealEnv::ReconnectDelay(5, initial, cap), 3200 * kMillisecond);
  EXPECT_EQ(RealEnv::ReconnectDelay(6, initial, cap), cap);
  EXPECT_EQ(RealEnv::ReconnectDelay(50, initial, cap), cap);  // no overflow
}

// --- Node config grammar ---

TEST(NodeConfigTest, FormatParseRoundTrip) {
  NodeConfig config;
  config.node_id = 7;
  config.deployment.seed = 42;
  config.deployment.num_masters = 2;
  config.deployment.num_auditors = 1;
  config.deployment.slaves_per_master = 3;
  config.deployment.num_clients = 4;
  config.deployment.corpus.n_items = 111;
  config.deployment.params.max_latency = 1500 * kMillisecond;
  config.deployment.client_write_fraction = 0.25;
  config.liar_index = 2;
  config.lie_probability = 0.75;
  config.epoch_us = 1234567890;
  config.start_delay_ms = 250;
  config.listen_host = "127.0.0.1";
  config.listen_port = 9000;
  config.peers.push_back({1, "127.0.0.1", 9001});
  config.peers.push_back({2, "10.0.0.2", 9002});

  auto parsed = ParseNodeConfig(FormatNodeConfig(config));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  const NodeConfig& r = *parsed;
  EXPECT_EQ(r.node_id, 7u);
  EXPECT_EQ(r.deployment.seed, 42u);
  EXPECT_EQ(r.deployment.num_masters, 2);
  EXPECT_EQ(r.deployment.slaves_per_master, 3);
  EXPECT_EQ(r.deployment.num_clients, 4);
  EXPECT_EQ(r.deployment.corpus.n_items, 111u);
  EXPECT_EQ(r.deployment.params.max_latency, 1500 * kMillisecond);
  EXPECT_DOUBLE_EQ(r.deployment.client_write_fraction, 0.25);
  EXPECT_EQ(r.liar_index, 2);
  EXPECT_DOUBLE_EQ(r.lie_probability, 0.75);
  EXPECT_EQ(r.epoch_us, 1234567890);
  EXPECT_EQ(r.start_delay_ms, 250);
  EXPECT_EQ(r.listen_port, 9000);
  ASSERT_EQ(r.peers.size(), 2u);
  EXPECT_EQ(r.peers[1].id, 2u);
  EXPECT_EQ(r.peers[1].host, "10.0.0.2");
  EXPECT_EQ(r.peers[1].port, 9002);
}

TEST(NodeConfigTest, CommentsAndBlankLinesIgnored) {
  auto parsed = ParseNodeConfig(
      "# a comment\n"
      "\n"
      "node_id 3   # trailing comment\n"
      "seed 9\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->node_id, 3u);
  EXPECT_EQ(parsed->deployment.seed, 9u);
}

TEST(NodeConfigTest, RejectsUnknownKeysAndMissingNodeId) {
  EXPECT_FALSE(ParseNodeConfig("node_id 1\nbogus_key 5\n").ok());
  EXPECT_FALSE(ParseNodeConfig("seed 1\n").ok());
  EXPECT_FALSE(ParseNodeConfig("node_id 1\nlisten nocolon\n").ok());
}

// --- Deployment provisioning ---

TEST(DeploymentTest, RosterLayoutMatchesClusterConvention) {
  DeploymentConfig dc;
  dc.num_masters = 2;
  dc.num_auditors = 1;
  dc.slaves_per_master = 2;
  dc.num_clients = 3;
  DeploymentPlan plan = BuildDeployment(dc);

  EXPECT_EQ(plan.directory_id, 1u);
  EXPECT_EQ(plan.master_ids, (std::vector<NodeId>{2, 3}));
  EXPECT_EQ(plan.auditor_ids, (std::vector<NodeId>{4}));
  EXPECT_EQ(plan.slave_ids, (std::vector<NodeId>{5, 6, 7, 8}));
  EXPECT_EQ(plan.client_ids, (std::vector<NodeId>{9, 10, 11}));
  EXPECT_EQ(plan.num_nodes(), 11);

  EXPECT_EQ(plan.KindOf(1), NodeKind::kDirectory);
  EXPECT_EQ(plan.KindOf(3), NodeKind::kMaster);
  EXPECT_EQ(plan.KindOf(4), NodeKind::kAuditor);
  EXPECT_EQ(plan.KindOf(7), NodeKind::kSlave);
  EXPECT_EQ(plan.KindOf(10), NodeKind::kClient);
  EXPECT_EQ(plan.RoleIndexOf(3), 1);
  EXPECT_EQ(plan.RoleIndexOf(7), 2);
  EXPECT_EQ(plan.RoleIndexOf(10), 1);
  EXPECT_EQ(plan.OwnerMasterOf(0), 0);
  EXPECT_EQ(plan.OwnerMasterOf(3), 1);
}

TEST(DeploymentTest, SameSeedDerivesIdenticalKeysAcrossProcesses) {
  DeploymentConfig dc;
  dc.seed = 77;
  dc.num_masters = 2;
  dc.slaves_per_master = 2;
  // Two independent builds (as two processes would do) must agree on every
  // public key and certificate — that is the whole premise of config-only
  // provisioning.
  DeploymentPlan a = BuildDeployment(dc);
  DeploymentPlan b = BuildDeployment(dc);
  EXPECT_EQ(a.content.content_public_key, b.content.content_public_key);
  ASSERT_EQ(a.master_keys.size(), b.master_keys.size());
  for (size_t i = 0; i < a.master_keys.size(); ++i) {
    EXPECT_EQ(a.master_keys[i].public_key, b.master_keys[i].public_key);
    EXPECT_EQ(a.master_keys[i].private_key, b.master_keys[i].private_key);
  }
  ASSERT_EQ(a.slave_certs.size(), b.slave_certs.size());
  for (size_t i = 0; i < a.slave_certs.size(); ++i) {
    EXPECT_EQ(a.slave_certs[i].signature, b.slave_certs[i].signature);
  }

  dc.seed = 78;
  DeploymentPlan c = BuildDeployment(dc);
  EXPECT_NE(a.content.content_public_key, c.content.content_public_key);
}

// --- RealEnv on loopback ---

// Minimal protocol-free node: counts deliveries and can echo them back.
class PingNode : public Node {
 public:
  explicit PingNode(NodeId peer) : peer_(peer) {}

  void Start() override { started_ = true; }

  void HandleMessage(NodeId from, const Payload& payload) override {
    received_.fetch_add(1, std::memory_order_relaxed);
    last_from_ = from;
    last_size_ = payload.size();
    if (echo_) {
      env()->Send(from, payload);
    }
  }

  void set_echo(bool echo) { echo_ = echo; }
  int received() const { return received_.load(std::memory_order_relaxed); }
  NodeId last_from() const { return last_from_; }
  size_t last_size() const { return last_size_; }
  bool started() const { return started_; }

 private:
  NodeId peer_;
  bool echo_ = false;
  bool started_ = false;
  std::atomic<int> received_{0};
  NodeId last_from_ = kInvalidNode;
  size_t last_size_ = 0;
};

TEST(RealEnvTest, LoopbackRoundTripBetweenTwoProcsWorthOfEnvs) {
  RealEnv::Options opts1;
  opts1.rng_seed = 1;
  RealEnv env1(opts1);
  RealEnv::Options opts2;
  opts2.rng_seed = 2;
  RealEnv env2(opts2);
  ASSERT_NE(env1.listen_port(), 0);
  ASSERT_NE(env2.listen_port(), 0);

  PingNode node1(2);
  PingNode node2(1);
  node2.set_echo(true);
  env1.Attach(&node1, 1);
  env2.Attach(&node2, 2);
  env1.AddPeer(2, "127.0.0.1", env2.listen_port());
  env2.AddPeer(1, "127.0.0.1", env1.listen_port());

  // node1 pings node2 every 5ms; node2 echoes each ping back.
  const int kPings = 10;
  std::function<void(int)> ping = [&](int i) {
    env1.Send(2, Payload(Bytes{0xAB, 0xCD, static_cast<uint8_t>(i)}));
    if (i + 1 < kPings) {
      env1.ScheduleAfter(5 * kMillisecond, [&ping, i] { ping(i + 1); });
    }
  };
  env1.ScheduleAfter(1 * kMillisecond, [&ping] { ping(0); });

  std::thread t1([&] { env1.Run(); });
  std::thread t2([&] { env2.Run(); });
  // Wait (bounded) for all echoes to come home.
  for (int spin = 0; spin < 500 && node1.received() < kPings; ++spin) {
    timespec ts{0, 10 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  env1.RequestStop();
  env2.RequestStop();
  t1.join();
  t2.join();

  EXPECT_TRUE(node1.started());
  EXPECT_EQ(node2.received(), kPings);
  EXPECT_EQ(node1.received(), kPings);
  EXPECT_EQ(node1.last_from(), 2u);
  EXPECT_EQ(node1.last_size(), 3u);
  EXPECT_GE(env1.messages_sent(), static_cast<uint64_t>(kPings));
  EXPECT_GE(env2.messages_delivered(), static_cast<uint64_t>(kPings));
  EXPECT_GT(env1.bytes_sent(), 0u);
}

TEST(RealEnvTest, SendToUnknownPeerDropsAndCounts) {
  RealEnv env((RealEnv::Options()));
  PingNode node(0);
  env.Attach(&node, 1);
  env.Send(99, Payload(Bytes{1, 2, 3}));
  // Like the simulated Network, a send is counted even when it drops.
  EXPECT_EQ(env.messages_dropped(), 1u);
  EXPECT_EQ(env.messages_sent(), 1u);
  EXPECT_EQ(env.messages_delivered(), 0u);
}

// The shared-epoch clock: two envs given the same epoch report comparable
// Now() even though they were constructed at different instants. This is
// the regression test for cross-process freshness (TokenIsFresh compares a
// master-minted timestamp against the local clock, so every process must
// count from the same zero).
TEST(RealEnvTest, SharedEpochMakesClocksComparableAcrossEnvs) {
  const int64_t epoch = RealtimeUs() - 5 * kSecond;  // "cluster started 5s ago"
  RealEnv::Options opts;
  opts.epoch_realtime_us = epoch;
  RealEnv env1(opts);

  timespec ts{0, 50 * 1000 * 1000};  // env2 starts 50ms later
  nanosleep(&ts, nullptr);
  RealEnv env2(opts);

  // Both clocks read ~5s despite different construction times; they agree
  // within a generous skew bound (same host, same epoch).
  EXPECT_GE(env1.Now(), 5 * kSecond);
  EXPECT_GE(env2.Now(), 5 * kSecond);
  EXPECT_LT(env1.Now(), 7 * kSecond);
  int64_t diff = env1.Now() - env2.Now();
  EXPECT_LT(diff < 0 ? -diff : diff, 1 * kSecond);

  // Without an epoch, Now() counts from construction — small and process
  // local (the mode tests and single-node runs use).
  RealEnv env3((RealEnv::Options()));
  EXPECT_LT(env3.Now(), 1 * kSecond);
  EXPECT_GE(env3.Now(), 0);
}

TEST(RealEnvTest, ScheduleAndCancelMirrorSimulatorSemantics) {
  RealEnv env((RealEnv::Options()));
  PingNode node(0);
  env.Attach(&node, 1);

  std::vector<int> order;
  env.ScheduleAfter(10 * kMillisecond, [&] { order.push_back(2); });
  env.ScheduleAfter(2 * kMillisecond, [&] { order.push_back(1); });
  EventId cancelled =
      env.ScheduleAfter(5 * kMillisecond, [&] { order.push_back(99); });
  env.Cancel(cancelled);
  env.Cancel(cancelled);  // double-cancel: no-op
  env.ScheduleAfter(20 * kMillisecond, [&] { env.RequestStop(); });
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace sdr
