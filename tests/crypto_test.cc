// Validation of the from-scratch crypto substrate against published test
// vectors (FIPS 180 / RFC 4231 / RFC 8032) plus property tests.
#include <gtest/gtest.h>

#include <string>

#include "src/crypto/ed25519.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha2.h"
#include "src/crypto/signer.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace sdr {
namespace {

TEST(Sha1Test, Fips180Vectors) {
  EXPECT_EQ(HexEncode(Sha1::Hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(HexEncode(Sha1::Hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(HexEncode(Sha1::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionA) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexEncode(h.Final()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data = rng.NextBytes(rng.NextBounded(300));
    Sha1 h;
    size_t pos = 0;
    while (pos < data.size()) {
      size_t n = std::min<size_t>(rng.NextBounded(64) + 1, data.size() - pos);
      h.Update(data.data() + pos, n);
      pos += n;
    }
    EXPECT_EQ(h.Final(), Sha1::Hash(data));
  }
}

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(HexEncode(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(HexEncode(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexEncode(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexEncode(h.Final()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha512Test, Fips180Vectors) {
  EXPECT_EQ(HexEncode(Sha512::Hash("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
  EXPECT_EQ(HexEncode(Sha512::Hash("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
  EXPECT_EQ(HexEncode(Sha512::Hash(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512Test, DerivedRoundConstantsSpotCheck) {
  // First and last round constants, straight from FIPS 180-2.
  const uint64_t* k = Sha512RoundConstants();
  EXPECT_EQ(k[0], 0x428a2f98d728ae22ULL);
  EXPECT_EQ(k[1], 0x7137449123ef65cdULL);
  EXPECT_EQ(k[79], 0x6c44198c4a475817ULL);
}

TEST(HmacTest, Rfc4231Vectors) {
  // Test case 1.
  Bytes key1(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha256(key1, ToBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2.
  EXPECT_EQ(HexEncode(HmacSha256(ToBytes("Jefe"),
                                 ToBytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashed) {
  Bytes long_key(200, 0x61);
  Bytes m = ToBytes("msg");
  // Must not crash and must differ from short-key MACs.
  Bytes mac = HmacSha256(long_key, m);
  EXPECT_EQ(mac.size(), 32u);
  EXPECT_NE(mac, HmacSha256(ToBytes("a"), m));
}

struct Rfc8032Vector {
  const char* seed_hex;
  const char* public_hex;
  const char* message_hex;
  const char* signature_hex;
};

class Ed25519VectorTest : public ::testing::TestWithParam<Rfc8032Vector> {};

TEST_P(Ed25519VectorTest, MatchesRfc8032) {
  const auto& v = GetParam();
  Bytes seed = HexDecode(v.seed_hex);
  Bytes pub = HexDecode(v.public_hex);
  Bytes msg = HexDecode(v.message_hex);
  Bytes sig = HexDecode(v.signature_hex);

  EXPECT_EQ(Ed25519PublicKey(seed), pub);
  EXPECT_EQ(Ed25519Sign(seed, msg), sig);
  EXPECT_TRUE(Ed25519Verify(pub, msg, sig));
}

INSTANTIATE_TEST_SUITE_P(
    Rfc8032, Ed25519VectorTest,
    ::testing::Values(
        Rfc8032Vector{
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
            "",
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
        Rfc8032Vector{
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
            "72",
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
        Rfc8032Vector{
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
            "af82",
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"}));

TEST(Ed25519Test, RoundTripRandomKeysAndMessages) {
  Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    Bytes seed = rng.NextBytes(kEd25519SeedSize);
    Bytes pub = Ed25519PublicKey(seed);
    Bytes msg = rng.NextBytes(rng.NextBounded(100));
    Bytes sig = Ed25519Sign(seed, msg);
    EXPECT_TRUE(Ed25519Verify(pub, msg, sig));
  }
}

TEST(Ed25519Test, TamperedMessageFails) {
  Rng rng(7);
  Bytes seed = rng.NextBytes(kEd25519SeedSize);
  Bytes pub = Ed25519PublicKey(seed);
  Bytes msg = ToBytes("the content version is 17");
  Bytes sig = Ed25519Sign(seed, msg);
  Bytes tampered = msg;
  tampered[4] ^= 1;
  EXPECT_FALSE(Ed25519Verify(pub, tampered, sig));
}

TEST(Ed25519Test, TamperedSignatureFails) {
  Rng rng(8);
  Bytes seed = rng.NextBytes(kEd25519SeedSize);
  Bytes pub = Ed25519PublicKey(seed);
  Bytes msg = ToBytes("pledge");
  Bytes sig = Ed25519Sign(seed, msg);
  for (size_t i = 0; i < sig.size(); i += 17) {
    Bytes bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(Ed25519Verify(pub, msg, bad)) << "byte " << i;
  }
}

TEST(Ed25519Test, WrongKeyFails) {
  Rng rng(9);
  Bytes seed1 = rng.NextBytes(kEd25519SeedSize);
  Bytes seed2 = rng.NextBytes(kEd25519SeedSize);
  Bytes msg = ToBytes("m");
  Bytes sig = Ed25519Sign(seed1, msg);
  EXPECT_FALSE(Ed25519Verify(Ed25519PublicKey(seed2), msg, sig));
}

TEST(Ed25519Test, NonCanonicalScalarRejected) {
  Rng rng(10);
  Bytes seed = rng.NextBytes(kEd25519SeedSize);
  Bytes pub = Ed25519PublicKey(seed);
  Bytes msg = ToBytes("m");
  Bytes sig = Ed25519Sign(seed, msg);
  // Force S >= L by setting high bits of the scalar half.
  Bytes bad = sig;
  bad[63] |= 0xf0;
  EXPECT_FALSE(Ed25519Verify(pub, msg, bad));
}

TEST(SignerTest, AllSchemesRoundTrip) {
  Rng rng(11);
  for (SignatureScheme scheme :
       {SignatureScheme::kEd25519, SignatureScheme::kHmacSha256,
        SignatureScheme::kNull}) {
    KeyPair kp = KeyPair::Generate(scheme, rng);
    Signer signer(kp);
    Bytes msg = ToBytes("read pledge body");
    Bytes sig = signer.Sign(msg);
    EXPECT_TRUE(VerifySignature(scheme, kp.public_key, msg, sig))
        << SignatureSchemeName(scheme);
  }
}

TEST(SignerTest, HmacTamperDetected) {
  Rng rng(12);
  KeyPair kp = KeyPair::Generate(SignatureScheme::kHmacSha256, rng);
  Signer signer(kp);
  Bytes msg = ToBytes("v=3");
  Bytes sig = signer.Sign(msg);
  Bytes other = ToBytes("v=4");
  EXPECT_FALSE(
      VerifySignature(SignatureScheme::kHmacSha256, kp.public_key, other, sig));
}

}  // namespace
}  // namespace sdr
