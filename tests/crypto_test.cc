// Validation of the from-scratch crypto substrate against published test
// vectors (FIPS 180 / RFC 4231 / RFC 8032) plus property tests.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/crypto/ed25519.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha1.h"
#include "src/crypto/sha2.h"
#include "src/crypto/signer.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace sdr {
namespace {

TEST(Sha1Test, Fips180Vectors) {
  EXPECT_EQ(HexEncode(Sha1::Hash("")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(HexEncode(Sha1::Hash("abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(HexEncode(Sha1::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionA) {
  Sha1 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexEncode(h.Final()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data = rng.NextBytes(rng.NextBounded(300));
    Sha1 h;
    size_t pos = 0;
    while (pos < data.size()) {
      size_t n = std::min<size_t>(rng.NextBounded(64) + 1, data.size() - pos);
      h.Update(data.data() + pos, n);
      pos += n;
    }
    EXPECT_EQ(h.Final(), Sha1::Hash(data));
  }
}

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(HexEncode(Sha256::Hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(HexEncode(Sha256::Hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(HexEncode(Sha256::Hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  EXPECT_EQ(HexEncode(h.Final()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha512Test, Fips180Vectors) {
  EXPECT_EQ(HexEncode(Sha512::Hash("")),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
  EXPECT_EQ(HexEncode(Sha512::Hash("abc")),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
  EXPECT_EQ(HexEncode(Sha512::Hash(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512Test, DerivedRoundConstantsSpotCheck) {
  // First and last round constants, straight from FIPS 180-2.
  const uint64_t* k = Sha512RoundConstants();
  EXPECT_EQ(k[0], 0x428a2f98d728ae22ULL);
  EXPECT_EQ(k[1], 0x7137449123ef65cdULL);
  EXPECT_EQ(k[79], 0x6c44198c4a475817ULL);
}

TEST(HmacTest, Rfc4231Vectors) {
  // Test case 1.
  Bytes key1(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha256(key1, ToBytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2.
  EXPECT_EQ(HexEncode(HmacSha256(ToBytes("Jefe"),
                                 ToBytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, LongKeyIsHashed) {
  Bytes long_key(200, 0x61);
  Bytes m = ToBytes("msg");
  // Must not crash and must differ from short-key MACs.
  Bytes mac = HmacSha256(long_key, m);
  EXPECT_EQ(mac.size(), 32u);
  EXPECT_NE(mac, HmacSha256(ToBytes("a"), m));
}

struct Rfc8032Vector {
  const char* seed_hex;
  const char* public_hex;
  const char* message_hex;
  const char* signature_hex;
};

class Ed25519VectorTest : public ::testing::TestWithParam<Rfc8032Vector> {};

// Runs a test body under both the precomputed fast path and the naive
// reference path, restoring the process-wide setting afterwards.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool fast) : saved_(Ed25519FastPathEnabled()) {
    Ed25519SetFastPath(fast);
  }
  ~FastPathGuard() { Ed25519SetFastPath(saved_); }

 private:
  bool saved_;
};

TEST_P(Ed25519VectorTest, MatchesRfc8032) {
  const auto& v = GetParam();
  Bytes seed = HexDecode(v.seed_hex);
  Bytes pub = HexDecode(v.public_hex);
  Bytes msg = HexDecode(v.message_hex);
  Bytes sig = HexDecode(v.signature_hex);

  // The vectors must hold bit-for-bit through both implementations.
  for (bool fast : {true, false}) {
    FastPathGuard guard(fast);
    EXPECT_EQ(Ed25519PublicKey(seed), pub) << "fast=" << fast;
    EXPECT_EQ(Ed25519Sign(seed, msg), sig) << "fast=" << fast;
    EXPECT_TRUE(Ed25519Verify(pub, msg, sig)) << "fast=" << fast;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rfc8032, Ed25519VectorTest,
    ::testing::Values(
        Rfc8032Vector{
            "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
            "",
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
        Rfc8032Vector{
            "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
            "72",
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
        Rfc8032Vector{
            "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
            "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
            "af82",
            "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
            "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"}));

TEST(Ed25519Test, RoundTripRandomKeysAndMessages) {
  Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    Bytes seed = rng.NextBytes(kEd25519SeedSize);
    Bytes pub = Ed25519PublicKey(seed);
    Bytes msg = rng.NextBytes(rng.NextBounded(100));
    Bytes sig = Ed25519Sign(seed, msg);
    EXPECT_TRUE(Ed25519Verify(pub, msg, sig));
  }
}

TEST(Ed25519Test, TamperedMessageFails) {
  Rng rng(7);
  Bytes seed = rng.NextBytes(kEd25519SeedSize);
  Bytes pub = Ed25519PublicKey(seed);
  Bytes msg = ToBytes("the content version is 17");
  Bytes sig = Ed25519Sign(seed, msg);
  Bytes tampered = msg;
  tampered[4] ^= 1;
  EXPECT_FALSE(Ed25519Verify(pub, tampered, sig));
}

TEST(Ed25519Test, TamperedSignatureFails) {
  Rng rng(8);
  Bytes seed = rng.NextBytes(kEd25519SeedSize);
  Bytes pub = Ed25519PublicKey(seed);
  Bytes msg = ToBytes("pledge");
  Bytes sig = Ed25519Sign(seed, msg);
  for (size_t i = 0; i < sig.size(); i += 17) {
    Bytes bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(Ed25519Verify(pub, msg, bad)) << "byte " << i;
  }
}

TEST(Ed25519Test, WrongKeyFails) {
  Rng rng(9);
  Bytes seed1 = rng.NextBytes(kEd25519SeedSize);
  Bytes seed2 = rng.NextBytes(kEd25519SeedSize);
  Bytes msg = ToBytes("m");
  Bytes sig = Ed25519Sign(seed1, msg);
  EXPECT_FALSE(Ed25519Verify(Ed25519PublicKey(seed2), msg, sig));
}

TEST(Ed25519Test, NonCanonicalScalarRejected) {
  Rng rng(10);
  Bytes seed = rng.NextBytes(kEd25519SeedSize);
  Bytes pub = Ed25519PublicKey(seed);
  Bytes msg = ToBytes("m");
  Bytes sig = Ed25519Sign(seed, msg);
  // Force S >= L by setting high bits of the scalar half.
  Bytes bad = sig;
  bad[63] |= 0xf0;
  EXPECT_FALSE(Ed25519Verify(pub, msg, bad));
}

TEST(Ed25519Test, FastPathMatchesNaiveOnRandomInputs) {
  // The precomputed-table fixed-base multiplication and the Straus/Shamir
  // verify loop must agree with the plain double-and-add reference on
  // random scalars, both for the produced bytes and for the verdicts.
  Rng rng(20);
  for (int trial = 0; trial < 12; ++trial) {
    Bytes seed = rng.NextBytes(kEd25519SeedSize);
    Bytes msg = rng.NextBytes(rng.NextBounded(200));

    Bytes pub_fast, sig_fast, pub_naive, sig_naive;
    {
      FastPathGuard guard(true);
      pub_fast = Ed25519PublicKey(seed);
      sig_fast = Ed25519Sign(seed, msg);
    }
    {
      FastPathGuard guard(false);
      pub_naive = Ed25519PublicKey(seed);
      sig_naive = Ed25519Sign(seed, msg);
    }
    EXPECT_EQ(pub_fast, pub_naive) << "trial " << trial;
    EXPECT_EQ(sig_fast, sig_naive) << "trial " << trial;

    Bytes bad_sig = sig_fast;
    bad_sig[trial % 32] ^= 0x20;
    for (bool fast : {true, false}) {
      FastPathGuard guard(fast);
      EXPECT_TRUE(Ed25519Verify(pub_fast, msg, sig_fast))
          << "trial " << trial << " fast=" << fast;
      EXPECT_FALSE(Ed25519Verify(pub_fast, msg, bad_sig))
          << "trial " << trial << " fast=" << fast;
    }
  }
}

TEST(Ed25519Test, ExpandedKeySignsIdentically) {
  Rng rng(21);
  Bytes seed = rng.NextBytes(kEd25519SeedSize);
  Ed25519ExpandedKey key = Ed25519ExpandKey(seed);
  EXPECT_EQ(key.public_key, Ed25519PublicKey(seed));
  for (int trial = 0; trial < 4; ++trial) {
    Bytes msg = rng.NextBytes(rng.NextBounded(128));
    EXPECT_EQ(Ed25519SignExpanded(key, msg), Ed25519Sign(seed, msg));
  }
}

std::vector<Ed25519BatchItem> MakeBatch(size_t n, Rng& rng) {
  std::vector<Ed25519BatchItem> items(n);
  for (size_t i = 0; i < n; ++i) {
    Bytes seed = rng.NextBytes(kEd25519SeedSize);
    items[i].public_key = Ed25519PublicKey(seed);
    items[i].message = rng.NextBytes(64 + i);
    items[i].signature = Ed25519Sign(seed, items[i].message);
  }
  return items;
}

TEST(Ed25519BatchTest, EmptyAndSingleton) {
  Rng rng(22);
  EXPECT_TRUE(Ed25519VerifyBatch({}).empty());
  auto items = MakeBatch(1, rng);
  EXPECT_EQ(Ed25519VerifyBatch(items), std::vector<bool>{true});
  items[0].signature[5] ^= 1;
  EXPECT_EQ(Ed25519VerifyBatch(items), std::vector<bool>{false});
}

TEST(Ed25519BatchTest, AllGood) {
  Rng rng(23);
  auto items = MakeBatch(10, rng);
  std::vector<bool> ok = Ed25519VerifyBatch(items);
  ASSERT_EQ(ok.size(), items.size());
  for (size_t i = 0; i < ok.size(); ++i) {
    EXPECT_TRUE(ok[i]) << "item " << i;
  }
}

TEST(Ed25519BatchTest, SingleCulpritIdentified) {
  // One forged signature must flip exactly its own verdict: the combined
  // equation fails and bisection pins the culprit.
  Rng rng(24);
  for (size_t culprit : {size_t{0}, size_t{4}, size_t{8}}) {
    auto items = MakeBatch(9, rng);
    items[culprit].signature[10] ^= 0x04;
    std::vector<bool> ok = Ed25519VerifyBatch(items);
    for (size_t i = 0; i < ok.size(); ++i) {
      EXPECT_EQ(ok[i], i != culprit) << "culprit " << culprit << " item " << i;
    }
  }
}

TEST(Ed25519BatchTest, ManyCulpritsIdentified) {
  Rng rng(25);
  auto items = MakeBatch(12, rng);
  std::set<size_t> bad = {1, 2, 7, 11};
  for (size_t i : bad) {
    if (i % 2 == 0) {
      items[i].message.push_back(0x01);  // tampered message
    } else {
      items[i].signature[40] ^= 0x10;  // tampered signature
    }
  }
  std::vector<bool> ok = Ed25519VerifyBatch(items);
  for (size_t i = 0; i < ok.size(); ++i) {
    EXPECT_EQ(ok[i], bad.count(i) == 0) << "item " << i;
  }

  // Every item bad: all verdicts false.
  for (auto& item : items) {
    item.signature[0] ^= 0xff;
  }
  for (bool verdict : Ed25519VerifyBatch(items)) {
    EXPECT_FALSE(verdict);
  }
}

TEST(Ed25519BatchTest, UndecodableInputsRejectedUpFront) {
  Rng rng(26);
  auto items = MakeBatch(4, rng);
  items[0].public_key.resize(16);                // wrong key size
  items[1].signature[63] |= 0xf0;                // non-canonical S
  items[2].signature.resize(10);                 // wrong signature size
  std::vector<bool> ok = Ed25519VerifyBatch(items);
  EXPECT_EQ(ok, (std::vector<bool>{false, false, false, true}));
}

TEST(Ed25519BatchTest, MatchesSingleVerifyOnNaivePath) {
  // With the fast path off the batch API must fall back to per-item
  // verification with identical verdicts.
  FastPathGuard guard(false);
  Rng rng(27);
  auto items = MakeBatch(3, rng);
  items[1].signature[7] ^= 2;
  std::vector<bool> ok = Ed25519VerifyBatch(items);
  EXPECT_EQ(ok, (std::vector<bool>{true, false, true}));
}

TEST(VerifyCacheTest, HitMissAndNegativeCaching) {
  Rng rng(30);
  KeyPair kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer signer(kp);
  Bytes msg = ToBytes("pledge body");
  Bytes sig = signer.Sign(msg);
  Bytes bad = sig;
  bad[3] ^= 1;

  VerifyCache cache;
  EXPECT_TRUE(cache.Verify(kp.scheme, kp.public_key, msg, sig));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);

  EXPECT_TRUE(cache.Verify(kp.scheme, kp.public_key, msg, sig));
  EXPECT_EQ(cache.stats().hits, 1u);

  // A forged signature is cached too — with verdict false.
  EXPECT_FALSE(cache.Verify(kp.scheme, kp.public_key, msg, bad));
  EXPECT_FALSE(cache.Verify(kp.scheme, kp.public_key, msg, bad));
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(VerifyCacheTest, LruEviction) {
  Rng rng(31);
  KeyPair kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer signer(kp);
  Bytes m1 = ToBytes("m1"), m2 = ToBytes("m2"), m3 = ToBytes("m3");
  Bytes s1 = signer.Sign(m1), s2 = signer.Sign(m2), s3 = signer.Sign(m3);

  VerifyCache cache(/*capacity=*/2);
  cache.Verify(kp.scheme, kp.public_key, m1, s1);
  cache.Verify(kp.scheme, kp.public_key, m2, s2);
  // Touch m1 so m2 is the LRU entry, then insert m3 -> m2 evicted.
  cache.Verify(kp.scheme, kp.public_key, m1, s1);
  cache.Verify(kp.scheme, kp.public_key, m3, s3);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  uint64_t misses_before = cache.stats().misses;
  cache.Verify(kp.scheme, kp.public_key, m1, s1);  // still cached
  EXPECT_EQ(cache.stats().misses, misses_before);
  cache.Verify(kp.scheme, kp.public_key, m2, s2);  // was evicted
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(VerifyCacheTest, BatchDeduplicatesRepeatedTriples) {
  // The auditor's shape: many pledges carrying the identical master token.
  Rng rng(32);
  KeyPair slave_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  KeyPair master_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer slave(slave_kp);
  Signer master(master_kp);
  Bytes token_body = ToBytes("token v=7");
  Bytes token_sig = master.Sign(token_body);

  std::vector<VerifyItem> items;
  for (int i = 0; i < 4; ++i) {
    Bytes body = ToBytes("pledge " + std::to_string(i));
    items.push_back({slave_kp.public_key, body, slave.Sign(body)});
    items.push_back({master_kp.public_key, token_body, token_sig});
  }

  VerifyCache cache;
  std::vector<bool> ok = cache.VerifyBatch(SignatureScheme::kEd25519, items);
  for (size_t i = 0; i < ok.size(); ++i) {
    EXPECT_TRUE(ok[i]) << "item " << i;
  }
  // 4 distinct pledges + 1 distinct token verified; 3 token repeats hit the
  // in-batch dedup.
  EXPECT_EQ(cache.stats().misses, 5u);
  EXPECT_EQ(cache.stats().hits, 3u);

  // Re-verifying the same batch is all hits.
  cache.VerifyBatch(SignatureScheme::kEd25519, items);
  EXPECT_EQ(cache.stats().hits, 11u);
  EXPECT_EQ(cache.stats().misses, 5u);
}

TEST(SignerTest, AllSchemesRoundTrip) {
  Rng rng(11);
  for (SignatureScheme scheme :
       {SignatureScheme::kEd25519, SignatureScheme::kHmacSha256,
        SignatureScheme::kNull}) {
    KeyPair kp = KeyPair::Generate(scheme, rng);
    Signer signer(kp);
    Bytes msg = ToBytes("read pledge body");
    Bytes sig = signer.Sign(msg);
    EXPECT_TRUE(VerifySignature(scheme, kp.public_key, msg, sig))
        << SignatureSchemeName(scheme);
  }
}

TEST(SignerTest, HmacTamperDetected) {
  Rng rng(12);
  KeyPair kp = KeyPair::Generate(SignatureScheme::kHmacSha256, rng);
  Signer signer(kp);
  Bytes msg = ToBytes("v=3");
  Bytes sig = signer.Sign(msg);
  Bytes other = ToBytes("v=4");
  EXPECT_FALSE(
      VerifySignature(SignatureScheme::kHmacSha256, kp.public_key, other, sig));
}

}  // namespace
}  // namespace sdr
