// Tests for the discrete-event simulator, network model and authenticated
// channel handshake.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/channel.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/util/bytes.h"
#include "src/util/rng.h"

namespace sdr {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, TiesBreakByScheduleOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(10, [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim(1);
  int fired = 0;
  sim.ScheduleAt(100, [&] { ++fired; });
  sim.ScheduleAt(200, [&] { ++fired; });
  sim.RunUntil(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 150);
  sim.RunUntil(250);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ScheduledInPastRunsNow) {
  Simulator sim(1);
  sim.RunUntil(100);
  int fired = 0;
  sim.ScheduleAt(50, [&] { ++fired; });
  sim.Step();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100);  // clock must not go backwards
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim(1);
  int fired = 0;
  EventId id = sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  sim.Cancel(id);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, DoubleCancelKeepsPendingCountCorrect) {
  // Regression: the lazy-cancel queue counted every Cancel call against the
  // pending total, so cancelling the same id twice underflowed it.
  Simulator sim(1);
  int fired = 0;
  EventId a = sim.ScheduleAt(10, [&] { ++fired; });
  sim.ScheduleAt(20, [&] { ++fired; });
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Cancel(a);  // second cancel of the same id must be a no-op
  sim.Cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, StaleCancelDoesNotHitSlotReuse) {
  // After an event fires, its id is dead; a later Cancel with that id must
  // not cancel whatever event now occupies the recycled slot.
  Simulator sim(1);
  int fired = 0;
  EventId a = sim.ScheduleAt(10, [&] { ++fired; });
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EventId b = sim.ScheduleAt(20, [&] { ++fired; });
  EXPECT_NE(a, b);
  sim.Cancel(a);  // stale id; b likely reuses a's slot
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StressMatchesReferenceModel) {
  // Randomized schedule/cancel/fire interleavings against a brute-force
  // reference: pending events as a plain vector, fire order = min by
  // (time, schedule seq). The indexed heap must agree on every firing and
  // on the pending count after every operation.
  Simulator sim(7);
  Rng rng(20260806);
  struct RefEvent {
    SimTime time;
    uint64_t seq;
    int tag;
    EventId id;
  };
  std::vector<RefEvent> ref;  // reference pending set
  std::vector<int> fired_real;
  std::vector<int> fired_ref;
  uint64_t next_seq = 0;

  auto ref_fire_one = [&] {
    size_t best = 0;
    for (size_t i = 1; i < ref.size(); ++i) {
      if (ref[i].time < ref[best].time ||
          (ref[i].time == ref[best].time && ref[i].seq < ref[best].seq)) {
        best = i;
      }
    }
    fired_ref.push_back(ref[best].tag);
    ref.erase(ref.begin() + static_cast<long>(best));
  };

  for (int op = 0; op < 4000; ++op) {
    uint64_t pick = rng.NextBounded(100);
    if (pick < 55 || ref.empty()) {
      SimTime t = sim.Now() + static_cast<SimTime>(rng.NextBounded(500));
      int tag = op;
      EventId id = sim.ScheduleAt(t, [&fired_real, tag] {
        fired_real.push_back(tag);
      });
      ref.push_back(RefEvent{std::max(t, sim.Now()), next_seq++, tag, id});
    } else if (pick < 80) {
      size_t i = rng.NextBounded(ref.size());
      sim.Cancel(ref[i].id);
      if (rng.NextBool(0.25)) {
        sim.Cancel(ref[i].id);  // double-cancel must stay a no-op
      }
      ref.erase(ref.begin() + static_cast<long>(i));
    } else {
      size_t steps = 1 + rng.NextBounded(3);
      for (size_t s = 0; s < steps && !ref.empty(); ++s) {
        ref_fire_one();
        sim.Step();
      }
    }
    ASSERT_EQ(sim.pending_events(), ref.size());
  }
  while (!ref.empty()) {
    ref_fire_one();
    sim.Step();
  }
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(fired_real, fired_ref);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim(1);
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 5) {
      sim.ScheduleAfter(10, tick);
    }
  };
  sim.ScheduleAfter(10, tick);
  sim.RunUntilIdle();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.Now(), 50);
}

// A node that records everything it receives.
class EchoNode : public Node {
 public:
  void HandleMessage(NodeId from, const Payload& payload) override {
    received.emplace_back(from, payload.ToBytes());
  }
  std::vector<std::pair<NodeId, Bytes>> received;
};

TEST(NetworkTest, DeliversWithLatency) {
  Simulator sim(1);
  Network net(&sim, LinkModel{10 * kMillisecond, 0, 0.0});
  EchoNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  net.Send(ida, idb, ToBytes("hi"));
  sim.RunUntil(9 * kMillisecond);
  EXPECT_TRUE(b.received.empty());
  sim.RunUntil(10 * kMillisecond);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, ida);
  EXPECT_EQ(ToString(b.received[0].second), "hi");
}

TEST(NetworkTest, DownReceiverDropsInFlight) {
  Simulator sim(1);
  Network net(&sim, LinkModel{10 * kMillisecond, 0, 0.0});
  EchoNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  net.Send(ida, idb, ToBytes("x"));
  net.SetNodeUp(idb, false);
  sim.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);

  // After restart, new messages flow again.
  net.SetNodeUp(idb, true);
  net.Send(ida, idb, ToBytes("y"));
  sim.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, CrashMidFlightDropsOnlyUndeliveredMessages) {
  // Two messages race toward a node that crashes between their arrivals:
  // the one that lands before the crash is delivered, the one still in
  // flight at crash time is dropped at delivery time.
  Simulator sim(1);
  Network net(&sim, LinkModel{10 * kMillisecond, 0, 0.0});
  EchoNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  net.Send(ida, idb, ToBytes("early"));
  sim.RunUntil(5 * kMillisecond);
  net.Send(ida, idb, ToBytes("late"));  // would land at t=15ms
  sim.RunUntil(12 * kMillisecond);      // "early" has landed
  net.SetNodeUp(idb, false);
  sim.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(ToString(b.received[0].second), "early");
  EXPECT_EQ(net.messages_dropped(), 1u);
}

TEST(NetworkTest, DownSenderDropsAtSendTime) {
  Simulator sim(1);
  Network net(&sim, LinkModel{1 * kMillisecond, 0, 0.0});
  EchoNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  net.SetNodeUp(ida, false);
  net.Send(ida, idb, ToBytes("from the grave"));
  sim.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.messages_sent(), 1u);  // counted as sent, then dropped
}

TEST(NetworkTest, PartitionBlocksBothDirections) {
  Simulator sim(1);
  Network net(&sim, LinkModel{1 * kMillisecond, 0, 0.0});
  EchoNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  net.SetPartitioned(ida, idb, true);
  net.Send(ida, idb, ToBytes("x"));
  net.Send(idb, ida, ToBytes("y"));
  sim.RunUntilIdle();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());

  net.SetPartitioned(ida, idb, false);
  net.Send(ida, idb, ToBytes("z"));
  sim.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, PartitionCheckedAtSendTimeNotDelivery) {
  // Partitions drop traffic when it is *sent*, not when it would land: a
  // message already in flight when the partition starts is still
  // delivered (it is on the wire), and healing does not resurrect
  // messages sent during the partition.
  Simulator sim(1);
  Network net(&sim, LinkModel{10 * kMillisecond, 0, 0.0});
  EchoNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  net.Send(ida, idb, ToBytes("in flight"));
  sim.RunUntil(5 * kMillisecond);
  net.SetPartitioned(ida, idb, true);
  net.Send(ida, idb, ToBytes("lost"));
  sim.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 1u);  // the in-flight message survived
  EXPECT_EQ(ToString(b.received[0].second), "in flight");
  EXPECT_EQ(net.messages_dropped(), 1u);

  net.SetPartitioned(ida, idb, false);
  sim.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);  // "lost" stays lost after healing
}

TEST(NetworkTest, PartitionThenHealPreservesSendOrder) {
  Simulator sim(1);
  Network net(&sim, LinkModel{10 * kMillisecond, 0, 0.0});
  EchoNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  net.Send(ida, idb, ToBytes("1"));
  net.SetPartitioned(ida, idb, true);
  net.Send(ida, idb, ToBytes("dropped"));
  net.SetPartitioned(ida, idb, false);
  net.Send(ida, idb, ToBytes("2"));
  sim.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(ToString(b.received[0].second), "1");
  EXPECT_EQ(ToString(b.received[1].second), "2");
}

TEST(NetworkTest, ClearPartitionsHealsEverything) {
  Simulator sim(1);
  Network net(&sim, LinkModel{1 * kMillisecond, 0, 0.0});
  EchoNode a, b, c;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  NodeId idc = net.AddNode(&c);
  net.SetPartitioned(ida, idb, true);
  net.SetPartitioned(ida, idc, true);
  EXPECT_EQ(net.active_partitions(), 2u);
  EXPECT_TRUE(net.IsPartitioned(ida, idb));
  EXPECT_TRUE(net.IsPartitioned(idb, ida));  // normalized pair
  net.ClearPartitions();
  EXPECT_EQ(net.active_partitions(), 0u);
  net.Send(ida, idb, ToBytes("x"));
  net.Send(ida, idc, ToBytes("y"));
  sim.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_EQ(c.received.size(), 1u);
}

TEST(NetworkTest, LossyLinkDropsSomeMessages) {
  Simulator sim(99);
  Network net(&sim, LinkModel{1 * kMillisecond, 0, 0.5});
  EchoNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  const int kSends = 1000;
  for (int i = 0; i < kSends; ++i) {
    net.Send(ida, idb, ToBytes("m"));
  }
  sim.RunUntilIdle();
  EXPECT_GT(b.received.size(), 350u);
  EXPECT_LT(b.received.size(), 650u);
  EXPECT_EQ(b.received.size() + net.messages_dropped(),
            static_cast<size_t>(kSends));
}

TEST(NetworkTest, DropCountersSplitByCause) {
  Simulator sim(5);
  Network net(&sim, LinkModel{1 * kMillisecond, 0, 0.0});
  EchoNode a, b, c;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  NodeId idc = net.AddNode(&c);

  // Random loss on the a->b link only.
  net.SetLink(ida, idb, LinkModel{1 * kMillisecond, 0, 1.0});
  net.Send(ida, idb, ToBytes("lost"));
  EXPECT_EQ(net.messages_dropped_loss(), 1u);
  net.SetLink(ida, idb, LinkModel{1 * kMillisecond, 0, 0.0});

  // Partition between a and c.
  net.SetPartitioned(ida, idc, true);
  net.Send(ida, idc, ToBytes("blocked"));
  net.Send(idc, ida, ToBytes("blocked"));
  EXPECT_EQ(net.messages_dropped_partition(), 2u);
  net.SetPartitioned(ida, idc, false);

  // Down receiver: the message is dropped at delivery time (matching the
  // network's long-standing semantics) and attributed to the node.
  net.SetNodeUp(idb, false);
  net.Send(ida, idb, ToBytes("down"));
  sim.RunUntilIdle();
  EXPECT_EQ(net.messages_dropped_node(), 1u);

  // Down sender drops at send time, also against the node.
  net.SetNodeUp(idb, true);
  net.SetNodeUp(ida, false);
  net.Send(ida, idb, ToBytes("from-down"));
  EXPECT_EQ(net.messages_dropped_node(), 2u);
  net.SetNodeUp(ida, true);

  EXPECT_EQ(net.messages_dropped(), net.messages_dropped_loss() +
                                        net.messages_dropped_partition() +
                                        net.messages_dropped_node());
  EXPECT_EQ(net.messages_dropped(), 5u);
}

TEST(NetworkTest, PerLinkOverrideApplies) {
  Simulator sim(1);
  Network net(&sim, LinkModel{100 * kMillisecond, 0, 0.0});
  EchoNode a, b;
  NodeId ida = net.AddNode(&a);
  NodeId idb = net.AddNode(&b);
  net.SetLink(ida, idb, LinkModel{1 * kMillisecond, 0, 0.0});
  net.Send(ida, idb, ToBytes("fast"));
  sim.RunUntil(1 * kMillisecond);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Simulator sim(seed);
    Network net(&sim, LinkModel{5 * kMillisecond, 3 * kMillisecond, 0.1});
    EchoNode a, b;
    NodeId ida = net.AddNode(&a);
    NodeId idb = net.AddNode(&b);
    for (int i = 0; i < 200; ++i) {
      net.Send(ida, idb, Bytes{static_cast<uint8_t>(i)});
    }
    sim.RunUntilIdle();
    return b.received.size();
  };
  EXPECT_EQ(run(7), run(7));
}

TEST(ChannelTest, HandshakeDerivesMatchingKeyAndAuthenticates) {
  Rng rng(5);
  KeyPair server_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer server(server_kp);

  HandshakeHello hello{rng.NextBytes(16)};
  Bytes payload = ToBytes("slave-assignment: node 7");
  HandshakeReply reply = MakeHandshakeReply(server, hello, payload, rng);

  auto key = VerifyHandshakeReply(SignatureScheme::kEd25519,
                                  server_kp.public_key, hello, reply);
  ASSERT_TRUE(key.ok());

  Bytes msg = ToBytes("read request 1");
  Bytes mac = SessionMac(*key, msg);
  EXPECT_TRUE(CheckSessionMac(*key, msg, mac));
  EXPECT_FALSE(CheckSessionMac(*key, ToBytes("read request 2"), mac));
}

TEST(ChannelTest, ForgedReplyRejected) {
  Rng rng(6);
  KeyPair server_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  KeyPair imposter_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer imposter(imposter_kp);

  HandshakeHello hello{rng.NextBytes(16)};
  HandshakeReply reply =
      MakeHandshakeReply(imposter, hello, ToBytes("evil payload"), rng);

  auto key = VerifyHandshakeReply(SignatureScheme::kEd25519,
                                  server_kp.public_key, hello, reply);
  EXPECT_FALSE(key.ok());
  EXPECT_EQ(key.error().code(), ErrorCode::kBadSignature);
}

TEST(ChannelTest, TamperedPayloadRejected) {
  Rng rng(7);
  KeyPair server_kp = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  Signer server(server_kp);
  HandshakeHello hello{rng.NextBytes(16)};
  HandshakeReply reply =
      MakeHandshakeReply(server, hello, ToBytes("assign slave 3"), rng);
  reply.payload = ToBytes("assign slave 4");  // man-in-the-middle edit
  auto key = VerifyHandshakeReply(SignatureScheme::kEd25519,
                                  server_kp.public_key, hello, reply);
  EXPECT_FALSE(key.ok());
}

}  // namespace
}  // namespace sdr
