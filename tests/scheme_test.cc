// Parameterized sweep: the full protocol must behave identically under
// every signature scheme (Ed25519 / HMAC / Null) — the scheme only changes
// who could forge what in a real deployment, not the protocol logic — and
// under a range of cluster shapes.
#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace sdr {
namespace {

class SchemeSweep : public ::testing::TestWithParam<SignatureScheme> {};

TEST_P(SchemeSweep, HonestClusterWorks) {
  ClusterConfig config;
  config.seed = 50;
  config.num_masters = 2;
  config.slaves_per_master = 2;
  config.num_clients = 3;
  config.corpus.n_items = 40;
  config.params.scheme = GetParam();
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 100 * kMillisecond;
  config.client_write_fraction = 0.05;
  Cluster cluster(config);
  cluster.RunFor(20 * kSecond);

  auto totals = cluster.ComputeTotals();
  EXPECT_GT(totals.reads_accepted, 100u);
  EXPECT_GT(totals.writes_committed_clients, 0u);
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
  EXPECT_EQ(totals.slaves_excluded, 0u);
}

TEST_P(SchemeSweep, LiarCaughtUnderEveryScheme) {
  ClusterConfig config;
  config.seed = 51;
  config.num_masters = 1;
  config.slaves_per_master = 2;
  config.num_clients = 2;
  config.corpus.n_items = 40;
  config.params.scheme = GetParam();
  config.params.double_check_probability = 0.2;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 50 * kMillisecond;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 1.0;
    }
    return b;
  };
  Cluster cluster(config);
  cluster.RunFor(30 * kSecond);
  EXPECT_GE(cluster.ComputeTotals().slaves_excluded, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSweep,
                         ::testing::Values(SignatureScheme::kEd25519,
                                           SignatureScheme::kHmacSha256,
                                           SignatureScheme::kNull),
                         [](const auto& info) {
                           std::string name = SignatureSchemeName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

struct Shape {
  int masters;
  int slaves_per_master;
  int clients;
};

class ShapeSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeSweep, ClusterServesCorrectlyAtEveryShape) {
  const Shape& shape = GetParam();
  ClusterConfig config;
  config.seed = 52;
  config.num_masters = shape.masters;
  config.slaves_per_master = shape.slaves_per_master;
  config.num_clients = shape.clients;
  config.corpus.n_items = 30;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 100 * kMillisecond;
  config.client_write_fraction = 0.03;
  Cluster cluster(config);
  cluster.RunFor(20 * kSecond);

  auto totals = cluster.ComputeTotals();
  EXPECT_GT(totals.reads_accepted, 0u);
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
  // All masters converge to the same version.
  for (int m = 1; m < cluster.num_masters(); ++m) {
    EXPECT_EQ(cluster.master(m).version(), cluster.master(0).version()) << m;
  }
  // And to identical content.
  auto reference = cluster.master(0).oplog().head().Fingerprint();
  for (int m = 1; m < cluster.num_masters(); ++m) {
    EXPECT_EQ(cluster.master(m).oplog().head().Fingerprint(), reference) << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(Shape{1, 1, 1}, Shape{1, 4, 8}, Shape{3, 1, 3},
                      Shape{3, 3, 9}, Shape{5, 2, 6}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.masters) + "s" +
             std::to_string(info.param.slaves_per_master) + "c" +
             std::to_string(info.param.clients);
    });

// Property: decoders must reject every truncation of every message type
// without crashing (fed by the fuzz-ish sweep below).
TEST(MessageRobustness, TruncationsNeverCrashDecoders) {
  Rng rng(53);
  KeyPair kp = KeyPair::Generate(SignatureScheme::kHmacSha256, rng);
  Signer signer(kp);
  VersionToken token = MakeVersionToken(signer, 2, 3, 99);
  Pledge pledge =
      MakePledge(signer, 9, Query::Grep("a.*", "lo", "hi"), Bytes(20, 1), token);

  std::vector<Bytes> bodies;
  {
    ReadReply m;
    m.request_id = 1;
    m.ok = true;
    m.result.type = QueryResult::Type::kRows;
    m.result.rows = {{"k", "v"}};
    m.pledge = pledge;
    bodies.push_back(m.Encode());
  }
  {
    StateUpdate m;
    m.version = 2;
    m.batch = {WriteOp::Put("a", "b")};
    m.token = token;
    bodies.push_back(m.Encode());
  }
  {
    DoubleCheckReply m;
    m.request_id = 3;
    m.served = true;
    m.matches = false;
    bodies.push_back(m.Encode());
  }
  {
    BadReadNotice m;
    m.pledge = pledge;
    m.correct_sha1 = Bytes(20, 2);
    bodies.push_back(m.Encode());
  }
  {
    Reassignment m;
    m.new_slave_cert = IssueCertificate(signer, 9, Role::kSlave, kp.public_key);
    m.auditor = 4;
    bodies.push_back(m.Encode());
  }

  for (const Bytes& body : bodies) {
    for (size_t cut = 0; cut < body.size(); ++cut) {
      Bytes truncated(body.begin(), body.begin() + static_cast<long>(cut));
      // Any of the decoders may be called on any payload; none may crash
      // and none may accept a strict prefix of a valid encoding.
      EXPECT_FALSE(ReadReply::Decode(truncated).ok());
      EXPECT_FALSE(StateUpdate::Decode(truncated).ok());
      EXPECT_FALSE(DoubleCheckReply::Decode(truncated).ok());
      EXPECT_FALSE(BadReadNotice::Decode(truncated).ok());
      EXPECT_FALSE(Reassignment::Decode(truncated).ok());
    }
  }
}

TEST(MessageRobustness, RandomBytesNeverCrashNodeDispatch) {
  // Throw random payloads at a live cluster's nodes; nothing may crash and
  // the protocol must keep functioning.
  ClusterConfig config;
  config.seed = 54;
  config.num_masters = 1;
  config.slaves_per_master = 1;
  config.num_clients = 1;
  config.corpus.n_items = 20;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 100 * kMillisecond;
  Cluster cluster(config);
  cluster.RunFor(3 * kSecond);

  Rng rng(55);
  NodeId attacker = cluster.client(0).id();
  std::vector<NodeId> targets = {cluster.master(0).id(),
                                 cluster.auditor().id(),
                                 cluster.slave(0).id(),
                                 cluster.client(0).id(),
                                 cluster.directory().id()};
  for (int i = 0; i < 500; ++i) {
    NodeId target = targets[rng.NextBounded(targets.size())];
    Bytes junk = rng.NextBytes(rng.NextBounded(120));
    cluster.net().Send(attacker, target, junk);
  }
  cluster.RunFor(10 * kSecond);
  auto totals = cluster.ComputeTotals();
  EXPECT_GT(totals.reads_accepted, 0u);
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
}

}  // namespace
}  // namespace sdr
