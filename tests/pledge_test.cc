// Unit tests for certificates, version tokens, pledges and wire messages.
#include <gtest/gtest.h>

#include "src/core/certificate.h"
#include "src/core/messages.h"
#include "src/core/pledge.h"
#include "src/util/rng.h"

namespace sdr {
namespace {

struct Keys {
  Keys() : rng(7) {
    content = KeyPair::Generate(SignatureScheme::kEd25519, rng);
    master = KeyPair::Generate(SignatureScheme::kEd25519, rng);
    slave = KeyPair::Generate(SignatureScheme::kEd25519, rng);
  }
  Rng rng;
  KeyPair content, master, slave;
};

TEST(CertificateTest, ChainVerifies) {
  Keys k;
  Signer owner(k.content);
  Signer master_signer(k.master);

  Certificate master_cert =
      IssueCertificate(owner, 2, Role::kMaster, k.master.public_key);
  EXPECT_TRUE(VerifyCertificate(SignatureScheme::kEd25519,
                                k.content.public_key, master_cert));

  Certificate slave_cert =
      IssueCertificate(master_signer, 9, Role::kSlave, k.slave.public_key);
  EXPECT_TRUE(VerifyCertificate(SignatureScheme::kEd25519, k.master.public_key,
                                slave_cert));
  // Cross-verification fails: the slave cert is not signed by the owner.
  EXPECT_FALSE(VerifyCertificate(SignatureScheme::kEd25519,
                                 k.content.public_key, slave_cert));
}

TEST(CertificateTest, TamperedFieldsBreakSignature) {
  Keys k;
  Signer owner(k.content);
  Certificate cert =
      IssueCertificate(owner, 2, Role::kMaster, k.master.public_key);

  Certificate subject_swap = cert;
  subject_swap.subject = 3;
  EXPECT_FALSE(VerifyCertificate(SignatureScheme::kEd25519,
                                 k.content.public_key, subject_swap));

  Certificate role_swap = cert;
  role_swap.role = Role::kSlave;
  EXPECT_FALSE(VerifyCertificate(SignatureScheme::kEd25519,
                                 k.content.public_key, role_swap));

  Certificate key_swap = cert;
  key_swap.subject_public_key = k.slave.public_key;
  EXPECT_FALSE(VerifyCertificate(SignatureScheme::kEd25519,
                                 k.content.public_key, key_swap));
}

TEST(CertificateTest, SerdeRoundTrip) {
  Keys k;
  Signer owner(k.content);
  Certificate cert =
      IssueCertificate(owner, 2, Role::kMaster, k.master.public_key);
  Writer w;
  cert.EncodeTo(w);
  Reader r(w.bytes());
  Certificate decoded = Certificate::DecodeFrom(r);
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(decoded, cert);
}

TEST(VersionTokenTest, SignAndVerify) {
  Keys k;
  Signer master(k.master);
  VersionToken token = MakeVersionToken(master, 2, 17, 1000000);
  EXPECT_TRUE(VerifyVersionToken(SignatureScheme::kEd25519,
                                 k.master.public_key, token));
  VersionToken forged = token;
  forged.content_version = 18;  // claim a newer version
  EXPECT_FALSE(VerifyVersionToken(SignatureScheme::kEd25519,
                                  k.master.public_key, forged));
}

TEST(VersionTokenTest, FreshnessWindow) {
  Keys k;
  Signer master(k.master);
  VersionToken token = MakeVersionToken(master, 2, 1, 10 * kSecond);
  EXPECT_TRUE(TokenIsFresh(token, 10 * kSecond, 2 * kSecond));
  EXPECT_TRUE(TokenIsFresh(token, 12 * kSecond, 2 * kSecond));
  EXPECT_FALSE(TokenIsFresh(token, 12 * kSecond + 1, 2 * kSecond));
}

TEST(PledgeTest, SignVerifyRoundTrip) {
  Keys k;
  Signer master(k.master);
  Signer slave(k.slave);
  VersionToken token = MakeVersionToken(master, 2, 5, 123456);
  Pledge pledge = MakePledge(slave, 9, Query::Get("item/1"), Bytes(20, 0xaa),
                             token);
  EXPECT_TRUE(VerifyPledgeSignature(SignatureScheme::kEd25519,
                                    k.slave.public_key, pledge));

  auto decoded = Pledge::Decode(pledge.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, pledge);
  EXPECT_TRUE(VerifyPledgeSignature(SignatureScheme::kEd25519,
                                    k.slave.public_key, *decoded));
}

TEST(PledgeTest, AnyFieldTamperBreaksSignature) {
  Keys k;
  Signer master(k.master);
  Signer slave(k.slave);
  VersionToken token = MakeVersionToken(master, 2, 5, 123456);
  Pledge pledge =
      MakePledge(slave, 9, Query::Get("item/1"), Bytes(20, 0xaa), token);

  Pledge p1 = pledge;
  p1.query = Query::Get("item/2");
  EXPECT_FALSE(
      VerifyPledgeSignature(SignatureScheme::kEd25519, k.slave.public_key, p1));

  Pledge p2 = pledge;
  p2.result_sha1 = Bytes(20, 0xbb);
  EXPECT_FALSE(
      VerifyPledgeSignature(SignatureScheme::kEd25519, k.slave.public_key, p2));

  Pledge p3 = pledge;
  p3.token.content_version = 6;
  EXPECT_FALSE(
      VerifyPledgeSignature(SignatureScheme::kEd25519, k.slave.public_key, p3));

  Pledge p4 = pledge;
  p4.slave = 10;
  EXPECT_FALSE(
      VerifyPledgeSignature(SignatureScheme::kEd25519, k.slave.public_key, p4));
}

TEST(PledgeTest, NonFrameability) {
  // A client that wants to frame the slave must forge a pledge with a bad
  // hash — but it cannot produce the slave's signature.
  Keys k;
  Signer master(k.master);
  KeyPair client_key = KeyPair::Generate(SignatureScheme::kEd25519, k.rng);
  Signer client(client_key);
  VersionToken token = MakeVersionToken(master, 2, 5, 1);
  Pledge forged;
  forged.query = Query::Get("x");
  forged.result_sha1 = Bytes(20, 0x01);
  forged.token = token;
  forged.slave = 9;
  forged.signature = client.Sign(forged.SignedBody());  // wrong key
  EXPECT_FALSE(VerifyPledgeSignature(SignatureScheme::kEd25519,
                                     k.slave.public_key, forged));
}

TEST(MessagesTest, TypedPayloadRoundTrips) {
  Keys k;
  Signer master(k.master);
  Signer slave_signer(k.slave);

  // Spot-check a representative subset of messages through their full
  // encode -> WithType -> PeekType -> Decode path.
  ReadRequest rr;
  rr.request_id = 42;
  rr.query = Query::Grep("a.*b", "lo", "hi");
  Bytes wire = WithType(MsgType::kReadRequest, rr.Encode());
  auto type = PeekType(wire);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(*type, MsgType::kReadRequest);
  auto rr2 = ReadRequest::Decode(Bytes(wire.begin() + 1, wire.end()));
  ASSERT_TRUE(rr2.ok());
  EXPECT_EQ(rr2->request_id, 42u);
  EXPECT_EQ(rr2->query, rr.query);

  VersionToken token = MakeVersionToken(master, 2, 3, 99);
  StateUpdate su;
  su.version = 3;
  su.batch = {WriteOp::Put("k", "v")};
  su.token = token;
  auto su2 = StateUpdate::Decode(su.Encode());
  ASSERT_TRUE(su2.ok());
  EXPECT_EQ(su2->version, 3u);
  EXPECT_EQ(su2->batch, su.batch);
  EXPECT_EQ(su2->token, token);

  Pledge pledge =
      MakePledge(slave_signer, 9, Query::Get("k"), Bytes(20, 1), token);
  DoubleCheckRequest dc;
  dc.request_id = 7;
  dc.pledge = pledge;
  auto dc2 = DoubleCheckRequest::Decode(dc.Encode());
  ASSERT_TRUE(dc2.ok());
  EXPECT_EQ(dc2->pledge, pledge);

  TobWrite tw;
  tw.origin_master = 2;
  tw.client = 11;
  tw.request_id = 5;
  tw.batch = {WriteOp::Delete("gone")};
  auto tw2 = TobWrite::Decode(tw.Encode());
  ASSERT_TRUE(tw2.ok());
  EXPECT_EQ(tw2->batch, tw.batch);
  EXPECT_EQ(tw2->client, 11u);
}

TEST(MessagesTest, DecodeRejectsTruncation) {
  ReadRequest rr;
  rr.request_id = 42;
  rr.query = Query::Get("k");
  Bytes body = rr.Encode();
  for (size_t cut : {size_t(0), size_t(1), body.size() - 1}) {
    Bytes truncated(body.begin(), body.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ReadRequest::Decode(truncated).ok()) << cut;
  }
  // Trailing garbage is also rejected.
  Bytes padded = body;
  padded.push_back(0x00);
  EXPECT_FALSE(ReadRequest::Decode(padded).ok());
}

TEST(MessagesTest, PeekTypeOnEmptyFails) {
  EXPECT_FALSE(PeekType(Bytes{}).ok());
  EXPECT_FALSE(PeekTobType(Bytes{}).ok());
}

TEST(ClientHelloReplyTest, SignatureCoversAssignment) {
  Keys k;
  Signer master(k.master);
  Signer owner(k.content);
  ClientHelloReply reply;
  reply.server_nonce = Bytes(16, 0x11);
  reply.slave_cert = IssueCertificate(master, 9, Role::kSlave,
                                      k.slave.public_key);
  reply.auditor = 4;
  Bytes nonce(16, 0x22);
  reply.signature = master.Sign(reply.SignedBody(nonce));

  EXPECT_TRUE(VerifySignature(SignatureScheme::kEd25519, k.master.public_key,
                              reply.SignedBody(nonce), reply.signature));
  // A different auditor id (redirection attack) breaks the signature.
  ClientHelloReply redirected = reply;
  redirected.auditor = 5;
  EXPECT_FALSE(VerifySignature(SignatureScheme::kEd25519, k.master.public_key,
                               redirected.SignedBody(nonce),
                               redirected.signature));
  // A replayed reply fails for a fresh nonce.
  Bytes other_nonce(16, 0x33);
  EXPECT_FALSE(VerifySignature(SignatureScheme::kEd25519, k.master.public_key,
                               reply.SignedBody(other_nonce),
                               reply.signature));
}

}  // namespace
}  // namespace sdr
