// Tests for the sequencer-based total-order broadcast: agreement, total
// order, loss recovery, and sequencer crash takeover.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/broadcast/total_order.h"
#include "src/sim/network.h"
#include "src/sim/simulator.h"
#include "src/util/bytes.h"

namespace sdr {
namespace {

// A master-like node whose only job is to participate in the broadcast.
class MemberNode : public Node {
 public:
  void Init(TotalOrderBroadcast::Config config) {
    bcast_ = std::make_unique<TotalOrderBroadcast>(
        env(), this, std::move(config),
        [this](NodeId to, const Bytes& payload) {
          env()->Send(to, payload);
        },
        [this](uint64_t seq, NodeId origin, const Bytes& payload) {
          delivered.push_back({seq, origin, payload});
        });
  }

  void Start() override { bcast_->Start(); }

  void HandleMessage(NodeId from, const Payload& payload) override {
    bcast_->OnMessage(from, payload);
  }

  struct Delivery {
    uint64_t seq;
    NodeId origin;
    Bytes payload;
  };

  TotalOrderBroadcast& bcast() { return *bcast_; }
  std::vector<Delivery> delivered;

 private:
  std::unique_ptr<TotalOrderBroadcast> bcast_;
};

struct Harness {
  Harness(int n, uint64_t seed, LinkModel link) : sim(seed), net(&sim, link) {
    for (int i = 0; i < n; ++i) {
      members.push_back(std::make_unique<MemberNode>());
      net.AddNode(members.back().get());
    }
    TotalOrderBroadcast::Config config;
    for (const auto& m : members) {
      config.group.push_back(m->id());
    }
    for (auto& m : members) {
      m->Init(config);
    }
    net.StartAll();
  }

  // All live members delivered the same sequence of (origin, payload)?
  bool AllAgree(size_t expected_count) const {
    const auto& ref = members[0]->delivered;
    for (const auto& m : members) {
      if (!m->up()) {
        continue;
      }
      if (m->delivered.size() != expected_count) {
        return false;
      }
    }
    for (const auto& m : members) {
      if (!m->up() || m.get() == members[0].get()) {
        continue;
      }
      for (size_t i = 0; i < expected_count; ++i) {
        if (m->delivered[i].seq != ref[i].seq ||
            m->delivered[i].origin != ref[i].origin ||
            m->delivered[i].payload != ref[i].payload) {
          return false;
        }
      }
    }
    return true;
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<MemberNode>> members;
};

TEST(BroadcastTest, SingleMessageReachesAllInOrder) {
  Harness h(3, 1, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0});
  h.members[1]->bcast().Broadcast(ToBytes("w1"));
  h.sim.RunUntil(2 * kSecond);
  for (const auto& m : h.members) {
    ASSERT_EQ(m->delivered.size(), 1u);
    EXPECT_EQ(m->delivered[0].seq, 1u);
    EXPECT_EQ(ToString(m->delivered[0].payload), "w1");
    EXPECT_EQ(m->delivered[0].origin, h.members[1]->id());
  }
}

TEST(BroadcastTest, ConcurrentSubmissionsTotallyOrdered) {
  Harness h(4, 2, LinkModel{10 * kMillisecond, 8 * kMillisecond, 0.0});
  for (int round = 0; round < 5; ++round) {
    for (auto& m : h.members) {
      m->bcast().Broadcast(ToBytes("m" + std::to_string(round)));
    }
  }
  h.sim.RunUntil(5 * kSecond);
  EXPECT_TRUE(h.AllAgree(20));
  // Sequence numbers are dense 1..20.
  for (size_t i = 0; i < h.members[0]->delivered.size(); ++i) {
    EXPECT_EQ(h.members[0]->delivered[i].seq, i + 1);
  }
}

TEST(BroadcastTest, SurvivesMessageLoss) {
  Harness h(3, 3, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.25});
  for (int i = 0; i < 10; ++i) {
    h.members[i % 3]->bcast().Broadcast(ToBytes("op" + std::to_string(i)));
  }
  h.sim.RunUntil(30 * kSecond);
  EXPECT_TRUE(h.AllAgree(10));
}

TEST(BroadcastTest, NoDuplicateDeliveryUnderRetransmission) {
  Harness h(3, 4, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.3});
  h.members[2]->bcast().Broadcast(ToBytes("once"));
  h.sim.RunUntil(20 * kSecond);
  for (const auto& m : h.members) {
    ASSERT_EQ(m->delivered.size(), 1u) << "node " << m->id();
  }
}

TEST(BroadcastTest, SequencerCrashTriggersTakeover) {
  Harness h(3, 5, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0});
  h.members[0]->bcast().Broadcast(ToBytes("before-crash"));
  h.sim.RunUntil(1 * kSecond);

  // Epoch 0 sequencer is members[0]; crash it.
  ASSERT_TRUE(h.members[0]->bcast().IsSequencer());
  h.net.SetNodeUp(h.members[0]->id(), false);

  h.sim.RunUntil(5 * kSecond);
  // Survivors should have rotated to a new sequencer.
  EXPECT_GT(h.members[1]->bcast().epoch(), 0u);
  NodeId new_seq = h.members[1]->bcast().sequencer();
  EXPECT_NE(new_seq, h.members[0]->id());

  // New submissions still get ordered and delivered to survivors.
  h.members[2]->bcast().Broadcast(ToBytes("after-crash"));
  h.sim.RunUntil(10 * kSecond);
  ASSERT_EQ(h.members[1]->delivered.size(), 2u);
  ASSERT_EQ(h.members[2]->delivered.size(), 2u);
  EXPECT_EQ(ToString(h.members[1]->delivered[1].payload), "after-crash");
  // Sequence numbering continues above the pre-crash message.
  EXPECT_EQ(h.members[1]->delivered[1].seq, 2u);
}

TEST(BroadcastTest, MessagePendingAtCrashIsNotLostBySurvivingOrigin) {
  Harness h(3, 6, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0});
  // Crash the sequencer immediately, then submit from a survivor: the
  // submission must be re-routed to the new sequencer by retransmission.
  h.net.SetNodeUp(h.members[0]->id(), false);
  h.members[1]->bcast().Broadcast(ToBytes("persistent"));
  h.sim.RunUntil(10 * kSecond);
  ASSERT_GE(h.members[1]->delivered.size(), 1u);
  EXPECT_EQ(ToString(h.members[1]->delivered[0].payload), "persistent");
  ASSERT_GE(h.members[2]->delivered.size(), 1u);
  EXPECT_EQ(h.members[1]->bcast().pending_submissions(), 0u);
}

TEST(BroadcastTest, DeterministicUnderSeed) {
  auto run = [](uint64_t seed) {
    Harness h(4, seed, LinkModel{8 * kMillisecond, 5 * kMillisecond, 0.1});
    for (int i = 0; i < 8; ++i) {
      h.members[i % 4]->bcast().Broadcast(ToBytes("x" + std::to_string(i)));
    }
    h.sim.RunUntil(20 * kSecond);
    std::string transcript;
    for (const auto& d : h.members[0]->delivered) {
      transcript += std::to_string(d.seq) + ":" + ToString(d.payload) + ";";
    }
    return transcript;
  };
  EXPECT_EQ(run(9), run(9));
}

TEST(BroadcastTest, PartitionHealsAndMembersCatchUp) {
  Harness h(3, 11, LinkModel{5 * kMillisecond, 2 * kMillisecond, 0.0});
  // Cut member 2 off from everyone; the rest keep ordering messages.
  h.net.SetPartitioned(h.members[2]->id(), h.members[0]->id(), true);
  h.net.SetPartitioned(h.members[2]->id(), h.members[1]->id(), true);
  for (int i = 0; i < 4; ++i) {
    h.members[0]->bcast().Broadcast(ToBytes("during" + std::to_string(i)));
  }
  h.sim.RunUntil(5 * kSecond);
  EXPECT_EQ(h.members[0]->delivered.size(), 4u);
  EXPECT_TRUE(h.members[2]->delivered.empty());

  // Heal: the isolated member NACKs its gap (triggered by heartbeats) and
  // catches up with the exact same sequence.
  h.net.SetPartitioned(h.members[2]->id(), h.members[0]->id(), false);
  h.net.SetPartitioned(h.members[2]->id(), h.members[1]->id(), false);
  h.sim.RunUntil(20 * kSecond);
  ASSERT_EQ(h.members[2]->delivered.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(h.members[2]->delivered[i].payload,
              h.members[0]->delivered[i].payload)
        << i;
  }

  // The isolated member advanced its epoch while cut off but (lacking a
  // majority) must never have finished a self-election that would clash
  // with the majority's sequence numbers: new broadcasts still agree.
  h.members[1]->bcast().Broadcast(ToBytes("after-heal"));
  h.sim.RunUntil(40 * kSecond);
  for (const auto& m : h.members) {
    ASSERT_EQ(m->delivered.size(), 5u) << m->id();
    EXPECT_EQ(ToString(m->delivered[4].payload), "after-heal") << m->id();
    EXPECT_EQ(m->delivered[4].seq, 5u) << m->id();
  }
}

TEST(BroadcastTest, PruneKeepsProtocolFunctional) {
  Harness h(3, 10, LinkModel{5 * kMillisecond, 0, 0.0});
  for (int i = 0; i < 5; ++i) {
    h.members[0]->bcast().Broadcast(ToBytes("a" + std::to_string(i)));
  }
  h.sim.RunUntil(2 * kSecond);
  for (auto& m : h.members) {
    m->bcast().PruneLogBelow(6);
  }
  h.members[1]->bcast().Broadcast(ToBytes("post-prune"));
  h.sim.RunUntil(4 * kSecond);
  EXPECT_TRUE(h.AllAgree(6));
}

}  // namespace
}  // namespace sdr
