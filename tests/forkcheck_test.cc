// Tests for the fork-consistency subsystem (src/forkcheck/): version-vector
// commitments, the conflict predicate, pledge chains, the detector, offline
// evidence verification, the optional wire fields, and the end-to-end
// equivocating-slave scenario through the chaos harness.
#include <gtest/gtest.h>

#include "src/chaos/runner.h"
#include "src/core/messages.h"
#include "src/forkcheck/fork.h"
#include "src/util/rng.h"

namespace sdr {
namespace {

constexpr SignatureScheme kScheme = SignatureScheme::kEd25519;

// A content owner, one master and one slave with the full certificate
// chain, plus helpers to mint pledges and attested commitments.
struct ForkFixture {
  ForkFixture() : rng(11) {
    content = KeyPair::Generate(kScheme, rng);
    master = KeyPair::Generate(kScheme, rng);
    slave = KeyPair::Generate(kScheme, rng);
    Signer owner(content);
    Signer master_signer(master);
    master_cert = IssueCertificate(owner, kMasterId, Role::kMaster,
                                   master.public_key);
    slave_cert = IssueCertificate(master_signer, kSlaveId, Role::kSlave,
                                  slave.public_key);
  }

  Pledge MintPledge(uint64_t version, const std::string& key) {
    Signer master_signer(master);
    Signer slave_signer(slave);
    VersionToken token =
        MakeVersionToken(master_signer, kMasterId, version, 1000000);
    QueryResult result;
    result.type = QueryResult::Type::kScalar;
    result.scalar = static_cast<int64_t>(version);
    return MakePledge(slave_signer, kSlaveId, Query::Get(key),
                      result.Sha1Digest(), token);
  }

  // One commitment from a fresh chain extended `length` times, the last
  // pledge at `version`.
  AttestedVv Attested(const VersionVector& vv, uint64_t version) {
    Signer master_signer(master);
    AttestedVv avv;
    avv.vv = vv;
    avv.token = MakeVersionToken(master_signer, kMasterId, version, 1000000);
    avv.slave_cert = slave_cert;
    return avv;
  }

  static constexpr NodeId kMasterId = 2;
  static constexpr NodeId kSlaveId = 9;
  Rng rng;
  KeyPair content, master, slave;
  Certificate master_cert, slave_cert;
};

// ---------------------------------------------------------------------------
// VersionVector: serde, signatures, tampering.
// ---------------------------------------------------------------------------

TEST(VersionVectorTest, SerdeRoundTrip) {
  ForkFixture f;
  Signer slave_signer(f.slave);
  Bytes head(20, 0xab);
  VersionVector vv =
      MakeVersionVector(slave_signer, f.kSlaveId, 17, 42, head);
  Writer w;
  vv.EncodeTo(w);
  Reader r(w.bytes());
  VersionVector decoded = VersionVector::DecodeFrom(r);
  EXPECT_TRUE(r.Done());
  EXPECT_EQ(decoded.slave, vv.slave);
  EXPECT_EQ(decoded.content_version, 17u);
  EXPECT_EQ(decoded.chain_length, 42u);
  EXPECT_EQ(decoded.head_sha1, head);
  EXPECT_EQ(decoded.signature, vv.signature);
}

TEST(VersionVectorTest, SignAndVerify) {
  ForkFixture f;
  Signer slave_signer(f.slave);
  VersionVector vv =
      MakeVersionVector(slave_signer, f.kSlaveId, 3, 7, Bytes(20, 1));
  EXPECT_TRUE(VerifyVersionVector(kScheme, f.slave.public_key, vv));
  EXPECT_FALSE(VerifyVersionVector(kScheme, f.master.public_key, vv));
}

TEST(VersionVectorTest, TamperedFieldsBreakSignature) {
  ForkFixture f;
  Signer slave_signer(f.slave);
  VersionVector vv =
      MakeVersionVector(slave_signer, f.kSlaveId, 3, 7, Bytes(20, 1));

  VersionVector version_bump = vv;
  version_bump.content_version = 4;
  EXPECT_FALSE(VerifyVersionVector(kScheme, f.slave.public_key, version_bump));

  VersionVector length_bump = vv;
  length_bump.chain_length = 8;
  EXPECT_FALSE(VerifyVersionVector(kScheme, f.slave.public_key, length_bump));

  VersionVector head_swap = vv;
  head_swap.head_sha1 = Bytes(20, 2);
  EXPECT_FALSE(VerifyVersionVector(kScheme, f.slave.public_key, head_swap));
}

// ---------------------------------------------------------------------------
// VvsConflict: the honest-total-order predicate.
// ---------------------------------------------------------------------------

VersionVector Vv(uint64_t version, uint64_t length, uint8_t head_byte) {
  VersionVector v;
  v.slave = 9;
  v.content_version = version;
  v.chain_length = length;
  v.head_sha1 = Bytes(20, head_byte);
  return v;
}

TEST(VvsConflictTest, SameLengthMustAgreeExactly) {
  EXPECT_FALSE(VvsConflict(Vv(5, 10, 1), Vv(5, 10, 1)));  // same commitment
  EXPECT_TRUE(VvsConflict(Vv(5, 10, 1), Vv(5, 10, 2)));   // two heads
  EXPECT_TRUE(VvsConflict(Vv(5, 10, 1), Vv(6, 10, 1)));   // two versions
}

TEST(VvsConflictTest, VersionMustFollowChainOrder) {
  // Honest growth: longer chain, same-or-later version.
  EXPECT_FALSE(VvsConflict(Vv(5, 10, 1), Vv(5, 11, 2)));
  EXPECT_FALSE(VvsConflict(Vv(5, 10, 1), Vv(9, 30, 2)));
  // Inversion: the shorter chain attests the later version.
  EXPECT_TRUE(VvsConflict(Vv(9, 10, 1), Vv(5, 11, 2)));
  EXPECT_TRUE(VvsConflict(Vv(5, 11, 2), Vv(9, 10, 1)));  // symmetric
}

// ---------------------------------------------------------------------------
// PledgeChain: per-read commitments.
// ---------------------------------------------------------------------------

TEST(PledgeChainTest, EveryReadExtendsAndCommits) {
  ForkFixture f;
  Signer slave_signer(f.slave);
  PledgeChain chain;
  EXPECT_EQ(chain.pledges_folded(), 0u);

  Pledge p1 = f.MintPledge(1, "a");
  VersionVector vv1 =
      chain.ExtendAndCommit(slave_signer, f.kSlaveId, 1, p1);
  EXPECT_EQ(vv1.chain_length, 1u);
  EXPECT_EQ(vv1.content_version, 1u);
  EXPECT_EQ(vv1.head_sha1, chain.head());
  EXPECT_TRUE(VerifyVersionVector(kScheme, f.slave.public_key, vv1));

  Pledge p2 = f.MintPledge(1, "b");
  VersionVector vv2 =
      chain.ExtendAndCommit(slave_signer, f.kSlaveId, 1, p2);
  EXPECT_EQ(vv2.chain_length, 2u);
  EXPECT_NE(vv2.head_sha1, vv1.head_sha1);
  EXPECT_FALSE(VvsConflict(vv1, vv2));  // one honest chain, no conflict
}

TEST(PledgeChainTest, SamePledgesSameHeadsForkedPledgesDiverge) {
  ForkFixture f;
  Signer slave_signer(f.slave);
  Pledge shared = f.MintPledge(1, "a");
  Pledge for_a = f.MintPledge(2, "x");
  Pledge for_b = f.MintPledge(2, "y");

  PledgeChain a, b;
  a.ExtendAndCommit(slave_signer, f.kSlaveId, 1, shared);
  b.ExtendAndCommit(slave_signer, f.kSlaveId, 1, shared);
  EXPECT_EQ(a.head(), b.head());  // deterministic fold

  // The fork: same length, different pledges — a same-length commitment
  // pair is now conflicting even though both carry version 2.
  VersionVector vva = a.ExtendAndCommit(slave_signer, f.kSlaveId, 2, for_a);
  VersionVector vvb = b.ExtendAndCommit(slave_signer, f.kSlaveId, 2, for_b);
  EXPECT_NE(a.head(), b.head());
  EXPECT_TRUE(VvsConflict(vva, vvb));
}

// ---------------------------------------------------------------------------
// ForkDetector.
// ---------------------------------------------------------------------------

TEST(ForkDetectorTest, HonestChainNeverConflicts) {
  ForkFixture f;
  Signer slave_signer(f.slave);
  PledgeChain chain;
  ForkDetector detector;
  for (uint64_t i = 1; i <= 20; ++i) {
    VersionVector vv = chain.ExtendAndCommit(slave_signer, f.kSlaveId,
                                             /*version=*/i / 3,
                                             f.MintPledge(i / 3, "k"));
    EXPECT_FALSE(detector.Observe(f.Attested(vv, i / 3)).has_value()) << i;
  }
  EXPECT_EQ(detector.tracked(), 20u);
}

TEST(ForkDetectorTest, ReObservationIsNotAConflict) {
  ForkFixture f;
  ForkDetector detector;
  AttestedVv avv = f.Attested(Vv(5, 10, 1), 5);
  EXPECT_FALSE(detector.Observe(avv).has_value());
  EXPECT_FALSE(detector.Observe(avv).has_value());
  EXPECT_EQ(detector.tracked(), 1u);
}

TEST(ForkDetectorTest, FlagsSameLengthDifferentHeads) {
  ForkFixture f;
  ForkDetector detector;
  EXPECT_FALSE(detector.Observe(f.Attested(Vv(5, 10, 1), 5)).has_value());
  auto conflict = detector.Observe(f.Attested(Vv(5, 10, 2), 5));
  ASSERT_TRUE(conflict.has_value());
  EXPECT_EQ(conflict->first.vv.head_sha1, Bytes(20, 1));
  EXPECT_EQ(conflict->second.vv.head_sha1, Bytes(20, 2));
  // One report per slave: the fork never reconverges, more pairs add nothing.
  EXPECT_FALSE(detector.Observe(f.Attested(Vv(5, 10, 3), 5)).has_value());
}

TEST(ForkDetectorTest, FlagsVersionOrderInversionAcrossLengths) {
  ForkFixture f;
  ForkDetector detector;
  EXPECT_FALSE(detector.Observe(f.Attested(Vv(20, 51, 1), 20)).has_value());
  // A longer chain attesting an older version: provable inversion.
  auto conflict = detector.Observe(f.Attested(Vv(7, 65, 2), 7));
  ASSERT_TRUE(conflict.has_value());
  EXPECT_TRUE(VvsConflict(conflict->first.vv, conflict->second.vv));
}

TEST(ForkDetectorTest, OutOfOrderObservationChecksBothNeighbours) {
  ForkFixture f;
  ForkDetector detector;
  EXPECT_FALSE(detector.Observe(f.Attested(Vv(1, 10, 1), 1)).has_value());
  EXPECT_FALSE(detector.Observe(f.Attested(Vv(9, 30, 2), 9)).has_value());
  // Lands between the two; conflicts with the successor (version 9 at a
  // longer chain than... no: 20 < 30 and 12 > 9 — inversion vs successor).
  auto conflict = detector.Observe(f.Attested(Vv(12, 20, 3), 12));
  ASSERT_TRUE(conflict.has_value());
}

// ---------------------------------------------------------------------------
// EvidenceChain / EvidenceBundle: serde and offline verification.
// ---------------------------------------------------------------------------

// A genuine conflicting pair, built the way the slave would: one shared
// prefix, two forked continuations.
EvidenceChain GenuineEvidence(ForkFixture& f) {
  Signer slave_signer(f.slave);
  PledgeChain a, b;
  Pledge shared = f.MintPledge(1, "a");
  a.ExtendAndCommit(slave_signer, f.kSlaveId, 1, shared);
  b.ExtendAndCommit(slave_signer, f.kSlaveId, 1, shared);
  VersionVector vva =
      a.ExtendAndCommit(slave_signer, f.kSlaveId, 2, f.MintPledge(2, "x"));
  VersionVector vvb =
      b.ExtendAndCommit(slave_signer, f.kSlaveId, 2, f.MintPledge(2, "y"));
  return MakeEvidenceChain(f.Attested(vva, 2), f.Attested(vvb, 2),
                           {f.master_cert});
}

TEST(EvidenceChainTest, SerdeRoundTrip) {
  ForkFixture f;
  EvidenceChain chain = GenuineEvidence(f);
  Bytes encoded = chain.Encode();
  auto decoded = EvidenceChain::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->a.vv.head_sha1, chain.a.vv.head_sha1);
  EXPECT_EQ(decoded->b.vv.chain_length, chain.b.vv.chain_length);
  ASSERT_EQ(decoded->master_certs.size(), 1u);
  EXPECT_EQ(decoded->master_certs[0], chain.master_certs[0]);
}

TEST(EvidenceChainTest, TruncationIsRejectedAtEveryLength) {
  ForkFixture f;
  Bytes encoded = GenuineEvidence(f).Encode();
  for (size_t cut = 0; cut < encoded.size(); cut += 13) {
    EXPECT_FALSE(
        EvidenceChain::Decode(BytesView(encoded.data(), cut)).ok())
        << "decoded from a " << cut << "-byte prefix";
  }
}

TEST(EvidenceChainTest, GenuineEvidenceVerifiesOffline) {
  ForkFixture f;
  std::string why;
  EXPECT_TRUE(VerifyEvidenceChain(kScheme, f.content.public_key,
                                  GenuineEvidence(f), &why))
      << why;
  EXPECT_TRUE(why.empty());
}

TEST(EvidenceChainTest, ConsistentPairIsNotEvidence) {
  ForkFixture f;
  Signer slave_signer(f.slave);
  PledgeChain chain;
  VersionVector vv1 =
      chain.ExtendAndCommit(slave_signer, f.kSlaveId, 1, f.MintPledge(1, "a"));
  VersionVector vv2 =
      chain.ExtendAndCommit(slave_signer, f.kSlaveId, 2, f.MintPledge(2, "b"));
  EvidenceChain honest = MakeEvidenceChain(f.Attested(vv1, 1),
                                           f.Attested(vv2, 2),
                                           {f.master_cert});
  std::string why;
  EXPECT_FALSE(VerifyEvidenceChain(kScheme, f.content.public_key, honest,
                                   &why));
  EXPECT_NE(why.find("chain-consistent"), std::string::npos) << why;
}

TEST(EvidenceChainTest, BrokenLinksFailVerification) {
  ForkFixture f;
  std::string why;

  EvidenceChain no_certs = GenuineEvidence(f);
  no_certs.master_certs.clear();
  EXPECT_FALSE(
      VerifyEvidenceChain(kScheme, f.content.public_key, no_certs, &why));

  EvidenceChain bad_vv_sig = GenuineEvidence(f);
  bad_vv_sig.a.vv.content_version ^= 1;
  EXPECT_FALSE(
      VerifyEvidenceChain(kScheme, f.content.public_key, bad_vv_sig, &why));

  EvidenceChain bad_token = GenuineEvidence(f);
  bad_token.b.token.content_version += 1;
  EXPECT_FALSE(
      VerifyEvidenceChain(kScheme, f.content.public_key, bad_token, &why));

  // Framing: master certificates not rooted in the content owner's key.
  EvidenceChain wrong_root = GenuineEvidence(f);
  EXPECT_FALSE(
      VerifyEvidenceChain(kScheme, f.master.public_key, wrong_root, &why));
}

TEST(EvidenceBundleTest, SerdeRoundTripAndTruncation) {
  ForkFixture f;
  EvidenceBundle bundle;
  bundle.scheme = kScheme;
  bundle.content_public_key = f.content.public_key;
  bundle.chains.push_back(GenuineEvidence(f));
  bundle.chains.push_back(GenuineEvidence(f));

  Bytes encoded = bundle.Encode();
  auto decoded = EvidenceBundle::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->scheme, kScheme);
  EXPECT_EQ(decoded->content_public_key, f.content.public_key);
  ASSERT_EQ(decoded->chains.size(), 2u);
  std::string why;
  EXPECT_TRUE(VerifyEvidenceChain(decoded->scheme,
                                  decoded->content_public_key,
                                  decoded->chains[0], &why))
      << why;

  encoded.pop_back();
  EXPECT_FALSE(EvidenceBundle::Decode(encoded).ok());
}

// ---------------------------------------------------------------------------
// Wire format: the optional trailing vv and the fork messages.
// ---------------------------------------------------------------------------

ReadReply SampleReply(ForkFixture& f) {
  ReadReply reply;
  reply.request_id = 77;
  reply.trace_id = 0x800000001;
  reply.ok = true;
  reply.result.type = QueryResult::Type::kScalar;
  reply.result.scalar = 42;
  reply.pledge = f.MintPledge(3, "k");
  return reply;
}

TEST(ForkWireTest, ReadReplyWithoutVvIsForkUnawareAndRoundTrips) {
  ForkFixture f;
  ReadReply reply = SampleReply(f);

  // Disabled mode: no vv, and the encoding carries not a single extra
  // byte for the field — it ends exactly where the fork-unaware format
  // ended (pledge last), which is what keeps baseline outputs identical.
  Bytes plain = reply.Encode();
  Writer manual;
  manual.U64(reply.request_id);
  manual.U64(reply.trace_id);
  manual.Bool(reply.ok);
  manual.Blob(reply.result.Encode());  // results ride as one length-prefixed blob
  reply.pledge.EncodeTo(manual);
  EXPECT_EQ(plain, manual.Take());

  auto decoded = ReadReply::Decode(plain);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->vv.has_value());
}

TEST(ForkWireTest, ReadReplyVvRoundTripsAndTruncationFails) {
  ForkFixture f;
  Signer slave_signer(f.slave);
  ReadReply reply = SampleReply(f);
  PledgeChain chain;
  reply.vv = chain.ExtendAndCommit(slave_signer, f.kSlaveId, 3, reply.pledge);

  Bytes encoded = reply.Encode();
  auto decoded = ReadReply::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->vv.has_value());
  EXPECT_EQ(decoded->vv->chain_length, 1u);
  EXPECT_EQ(decoded->vv->head_sha1, chain.head());
  EXPECT_TRUE(
      VerifyVersionVector(kScheme, f.slave.public_key, *decoded->vv));

  // A truncated trailing vv must fail decode, not silently drop the field.
  Bytes cut(encoded.begin(), encoded.end() - 5);
  EXPECT_FALSE(ReadReply::Decode(cut).ok());
}

TEST(ForkWireTest, AuditSubmitCarriesTheOptionalVv) {
  ForkFixture f;
  Signer slave_signer(f.slave);
  AuditSubmit submit;
  submit.trace_id = 5;
  submit.pledge = f.MintPledge(2, "q");
  PledgeChain chain;
  submit.vv = chain.ExtendAndCommit(slave_signer, f.kSlaveId, 2, submit.pledge);

  auto decoded = AuditSubmit::Decode(submit.Encode());
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->vv.has_value());
  EXPECT_EQ(decoded->vv->content_version, 2u);

  submit.vv.reset();
  auto plain = AuditSubmit::Decode(submit.Encode());
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->vv.has_value());
}

TEST(ForkWireTest, VvExchangeAndForkEvidenceRoundTrip) {
  ForkFixture f;
  VvExchange exchange;
  exchange.origin = 12;
  exchange.entries.push_back(f.Attested(Vv(5, 10, 1), 5));
  exchange.entries.push_back(f.Attested(Vv(6, 11, 2), 6));
  auto decoded = VvExchange::Decode(exchange.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->origin, 12u);
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[1].vv.chain_length, 11u);

  ForkEvidence evidence;
  evidence.trace_id = 9;
  evidence.chain = GenuineEvidence(f);
  auto decoded_evidence = ForkEvidence::Decode(evidence.Encode());
  ASSERT_TRUE(decoded_evidence.ok());
  std::string why;
  EXPECT_TRUE(VerifyEvidenceChain(kScheme, f.content.public_key,
                                  decoded_evidence->chain, &why))
      << why;
}

// ---------------------------------------------------------------------------
// Scenario grammar: the fork behaviors echo through parse -> ToString.
// ---------------------------------------------------------------------------

TEST(ForkScenarioTest, ForkFlagsRoundTripThroughTheParser) {
  const char* kTexts[] = {
      "at 10s set_behavior slave:1 fork_views=true",
      "at 10s set_behavior slave:1 stale_pledge=true",
      "at 10s set_behavior slave:1 split_serve=true",
      "at 10s set_behavior slaves:odd fork_views=true split_serve=true; "
      "at 40s set_behavior slaves:odd fork_views=false split_serve=false",
  };
  for (const char* text : kTexts) {
    auto first = ParseScenario(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = ParseScenario(first->ToString());
    ASSERT_TRUE(second.ok()) << first->ToString();
    EXPECT_EQ(*first, *second) << text;
    EXPECT_EQ(first->ToString(), second->ToString());
  }
}

TEST(ForkScenarioTest, ForkFlagsApplyToSlaveBehavior) {
  auto scenario =
      ParseScenario("at 10s set_behavior slave:1 fork_views=true");
  ASSERT_TRUE(scenario.ok());
  ASSERT_EQ(scenario->events.size(), 1u);
  Slave::Behavior behavior;
  scenario->events[0].patch.ApplyTo(behavior);
  EXPECT_TRUE(behavior.fork_views);
  EXPECT_FALSE(behavior.split_serve);
  EXPECT_FALSE(behavior.stale_pledge);
}

// ---------------------------------------------------------------------------
// End to end: the equivocating slave is detected, proven, excluded.
// ---------------------------------------------------------------------------

ClusterConfig ForkConfig(uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.params.scheme = SignatureScheme::kHmacSha256;
  config.params.fork_check_enabled = true;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 100 * kMillisecond;
  // Ten clients over four slaves: both id parities land on the forked
  // slave, so its two views are actually observed. A write mix keeps the
  // content version moving, which is what makes the fork divergent.
  config.num_clients = 10;
  config.client_write_fraction = 0.03;
  config.corpus.n_items = 50;
  config.mix.n_items = 50;
  config.write_gen.n_items = 50;
  return config;
}

TEST(ForkEndToEndTest, EquivocatingSlaveIsDetectedProvenAndExcluded) {
  Cluster cluster(ForkConfig(1));
  auto scenario =
      ParseScenario("at 5s set_behavior slave:1 fork_views=true");
  ASSERT_TRUE(scenario.ok());
  ChaosController controller(&cluster, *scenario,
                             DefaultCheckers(cluster.config()));
  controller.Install();
  cluster.RunFor(50 * kSecond);
  controller.Finish();
  for (const Violation& v : controller.violations()) {
    ADD_FAILURE() << v.ToString();
  }

  Cluster::Totals totals = cluster.ComputeTotals();
  EXPECT_GT(cluster.slave(1).metrics().equivocations_served, 0u);
  EXPECT_GT(totals.forks_detected, 0u);
  EXPECT_GT(totals.evidence_chains_emitted, 0u);
  EXPECT_GT(totals.vv_exchanges, 0u);
  EXPECT_TRUE(cluster.ExcludedByAnyMaster(cluster.slave(1).id()));

  // Every emitted chain is transferable: it verifies against nothing but
  // the content owner's public key, and a serde round trip preserves that.
  ASSERT_FALSE(cluster.fork_evidence().empty());
  for (const EvidenceChain& chain : cluster.fork_evidence()) {
    auto reparsed = EvidenceChain::Decode(chain.Encode());
    ASSERT_TRUE(reparsed.ok());
    std::string why;
    EXPECT_TRUE(VerifyEvidenceChain(cluster.config().params.scheme,
                                    cluster.content().content_public_key,
                                    *reparsed, &why))
        << why;
    EXPECT_EQ(reparsed->a.vv.slave, cluster.slave(1).id());
  }
}

TEST(ForkEndToEndTest, HonestRunWithForkCheckingHasNoFalsePositives) {
  Cluster cluster(ForkConfig(2));
  ChaosController controller(&cluster, Scenario{},
                             DefaultCheckers(cluster.config()));
  controller.Install();
  cluster.RunFor(40 * kSecond);
  controller.Finish();
  for (const Violation& v : controller.violations()) {
    ADD_FAILURE() << v.ToString();
  }
  Cluster::Totals totals = cluster.ComputeTotals();
  EXPECT_GT(totals.reads_accepted, 0u);
  EXPECT_GT(totals.vv_exchanges, 0u);  // the machinery ran...
  EXPECT_EQ(totals.forks_detected, 0u);  // ...and accused no one
  EXPECT_EQ(totals.evidence_chains_emitted, 0u);
  EXPECT_EQ(totals.slaves_excluded, 0u);
}

TEST(ForkEndToEndTest, DisabledModeAttachesNothing) {
  ClusterConfig config = ForkConfig(3);
  config.params.fork_check_enabled = false;
  Cluster cluster(config);
  cluster.RunFor(15 * kSecond);
  Cluster::Totals totals = cluster.ComputeTotals();
  EXPECT_GT(totals.reads_accepted, 0u);
  EXPECT_EQ(totals.vv_exchanges, 0u);
  EXPECT_EQ(totals.forks_detected, 0u);
  for (int s = 0; s < cluster.num_slaves(); ++s) {
    EXPECT_EQ(cluster.slave(s).metrics().vvs_attached, 0u);
  }
}

}  // namespace
}  // namespace sdr
