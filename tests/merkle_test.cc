#include <gtest/gtest.h>

#include "src/merkle/merkle_tree.h"
#include "src/store/document_store.h"
#include "src/util/rng.h"

namespace sdr {
namespace {

DocumentStore StoreWithN(int n) {
  DocumentStore s;
  for (int i = 0; i < n; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    s.Apply(WriteOp::Put(key, "value-" + std::to_string(i)));
  }
  return s;
}

TEST(MerkleTest, EmptyStoreHasStableRoot) {
  DocumentStore s;
  MerkleTree a = MerkleTree::Build(s);
  MerkleTree b = MerkleTree::Build(s);
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.leaf_count(), 0u);
  EXPECT_FALSE(a.Prove("anything").has_value());
}

TEST(MerkleTest, RootChangesWithContent) {
  DocumentStore s = StoreWithN(8);
  Bytes root1 = MerkleTree::Build(s).root();
  s.Apply(WriteOp::Put("k0003", "tampered"));
  Bytes root2 = MerkleTree::Build(s).root();
  EXPECT_NE(root1, root2);
}

class MerkleProofSizes : public ::testing::TestWithParam<int> {};

TEST_P(MerkleProofSizes, EveryKeyProvableAtAnySize) {
  const int n = GetParam();
  DocumentStore s = StoreWithN(n);
  MerkleTree tree = MerkleTree::Build(s);
  EXPECT_EQ(tree.leaf_count(), static_cast<size_t>(n));
  for (const auto& [key, value] : s.data()) {
    auto proof = tree.Prove(key);
    ASSERT_TRUE(proof.has_value()) << key << " n=" << n;
    EXPECT_EQ(proof->value, value);
    EXPECT_TRUE(MerkleTree::VerifyProof(*proof, tree.root()))
        << key << " n=" << n;
  }
}

// Odd sizes exercise the promoted-node path.
INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSizes,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                                           31, 33, 64, 100));

TEST(MerkleTest, TamperedValueFailsVerification) {
  DocumentStore s = StoreWithN(10);
  MerkleTree tree = MerkleTree::Build(s);
  auto proof = tree.Prove("k0004");
  ASSERT_TRUE(proof.has_value());
  proof->value = "malicious";
  EXPECT_FALSE(MerkleTree::VerifyProof(*proof, tree.root()));
}

TEST(MerkleTest, SwappedKeyFailsVerification) {
  DocumentStore s = StoreWithN(10);
  MerkleTree tree = MerkleTree::Build(s);
  auto proof = tree.Prove("k0004");
  ASSERT_TRUE(proof.has_value());
  proof->key = "k0005";
  EXPECT_FALSE(MerkleTree::VerifyProof(*proof, tree.root()));
}

TEST(MerkleTest, ProofAgainstWrongRootFails) {
  DocumentStore s1 = StoreWithN(10);
  DocumentStore s2 = StoreWithN(10);
  s2.Apply(WriteOp::Put("k0009", "changed"));
  MerkleTree t1 = MerkleTree::Build(s1);
  MerkleTree t2 = MerkleTree::Build(s2);
  auto proof = t1.Prove("k0004");
  ASSERT_TRUE(proof.has_value());
  EXPECT_FALSE(MerkleTree::VerifyProof(*proof, t2.root()));
}

TEST(MerkleTest, TamperedSiblingFailsVerification) {
  DocumentStore s = StoreWithN(16);
  MerkleTree tree = MerkleTree::Build(s);
  auto proof = tree.Prove("k0007");
  ASSERT_TRUE(proof.has_value());
  ASSERT_FALSE(proof->steps.empty());
  proof->steps[0].sibling[0] ^= 1;
  EXPECT_FALSE(MerkleTree::VerifyProof(*proof, tree.root()));
}

TEST(MerkleTest, ProofSerdeRoundTrip) {
  DocumentStore s = StoreWithN(13);
  MerkleTree tree = MerkleTree::Build(s);
  auto proof = tree.Prove("k0012");  // last key in an odd tree
  ASSERT_TRUE(proof.has_value());
  auto decoded = MerkleTree::Proof::Decode(proof->Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, proof->key);
  EXPECT_EQ(decoded->value, proof->value);
  EXPECT_EQ(decoded->steps, proof->steps);
  EXPECT_TRUE(MerkleTree::VerifyProof(*decoded, tree.root()));
}

TEST(MerkleTest, ProofDecodeRejectsGarbage) {
  EXPECT_FALSE(MerkleTree::Proof::Decode(Bytes{1, 2, 3}).has_value());
}

TEST(MerkleTest, RandomizedContentAllProofsVerify) {
  Rng rng(77);
  DocumentStore s;
  for (int i = 0; i < 200; ++i) {
    s.Apply(WriteOp::Put(HexEncode(rng.NextBytes(6)),
                         ToString(rng.NextBytes(rng.NextBounded(40)))));
  }
  MerkleTree tree = MerkleTree::Build(s);
  for (const auto& [key, value] : s.data()) {
    auto proof = tree.Prove(key);
    ASSERT_TRUE(proof.has_value());
    EXPECT_TRUE(MerkleTree::VerifyProof(*proof, tree.root()));
  }
}

}  // namespace
}  // namespace sdr
