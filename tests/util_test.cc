#include <gtest/gtest.h>

#include "src/util/bytes.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/serde.h"
#include "src/util/stats.h"

namespace sdr {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
  bool ok = false;
  EXPECT_EQ(HexDecode("0001abff", &ok), b);
  EXPECT_TRUE(ok);
}

TEST(BytesTest, HexDecodeRejectsBadInput) {
  bool ok = true;
  HexDecode("abc", &ok);  // odd length
  EXPECT_FALSE(ok);
  ok = true;
  HexDecode("zz", &ok);  // non-hex
  EXPECT_FALSE(ok);
}

TEST(BytesTest, HexDecodeAcceptsUpperCase) {
  bool ok = false;
  EXPECT_EQ(HexDecode("AbFf", &ok), (Bytes{0xab, 0xff}));
  EXPECT_TRUE(ok);
}

TEST(BytesTest, ConstantTimeEquals) {
  EXPECT_TRUE(ConstantTimeEquals({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEquals({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEquals({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(ConstantTimeEquals({}, {}));
}

TEST(BytesViewTest, ViewsAliasTheSourceWithoutCopying) {
  Bytes data = ToBytes("abcdefgh");
  BytesView view(data);
  EXPECT_EQ(view.size(), data.size());
  EXPECT_EQ(view.data(), data.data());  // a view, not a copy

  BytesView tail = view.substr(3);
  EXPECT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail.data(), data.data() + 3);
  EXPECT_EQ(tail[0], 'd');

  BytesView mid = view.substr(2, 3);
  EXPECT_EQ(mid.ToBytes(), ToBytes("cde"));

  // substr clamps instead of throwing.
  EXPECT_EQ(view.substr(100).size(), 0u);
  EXPECT_EQ(view.substr(6, 100).size(), 2u);
}

TEST(PayloadTest, SlicesShareOneBuffer) {
  Payload p = ToBytes("0123456789");
  Payload slice = p.Slice(2, 4);
  EXPECT_EQ(slice.size(), 4u);
  // Slicing aliases the parent's buffer: same allocation, offset pointer.
  EXPECT_EQ(slice.view().data(), p.view().data() + 2);
  EXPECT_EQ(slice.ToBytes(), ToBytes("2345"));

  Payload nested = slice.Slice(1, 2);
  EXPECT_EQ(nested.view().data(), p.view().data() + 3);
  EXPECT_EQ(nested.ToBytes(), ToBytes("34"));
}

TEST(PayloadTest, BufferOutlivesEveryHandleButNotTheData) {
  Payload slice;
  {
    Bytes original = ToBytes("the quick brown fox");
    Payload whole = original;  // moves a copy into shared ownership
    slice = whole.Slice(4, 5);
  }  // `original` and `whole` are gone; the shared buffer must survive
  EXPECT_EQ(slice.ToBytes(), ToBytes("quick"));
}

TEST(PayloadTest, ConvertsToViewAndReader) {
  Payload p = ToBytes("abc");
  BytesView v = p;  // implicit, used by every message dispatcher
  EXPECT_EQ(v.size(), 3u);
  Reader r(p.view());
  EXPECT_EQ(r.U8(), 'a');
}

TEST(SerdeTest, PrimitivesRoundTrip) {
  Writer w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-42);
  w.Bool(true);
  w.Double(3.25);
  w.Blob(ToBytes("hello"));
  w.Blob(std::string_view("world"));

  Reader r(w.bytes());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Double(), 3.25);
  EXPECT_EQ(r.BlobString(), "hello");
  EXPECT_EQ(r.BlobString(), "world");
  EXPECT_TRUE(r.Done());
}

TEST(SerdeTest, TruncatedInputFailsGracefully) {
  Writer w;
  w.U64(7);
  Bytes buf = w.bytes();
  buf.resize(4);
  Reader r(buf);
  r.U64();
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay failed and return zero values.
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_FALSE(r.Done());
}

TEST(SerdeTest, OversizedBlobLengthFails) {
  Writer w;
  w.U32(1000000);  // claims 1MB blob, no payload follows
  Reader r(w.bytes());
  Bytes b = r.Blob();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(r.ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.NextBool(0.3) ? 1 : 0;
  }
  double freq = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(freq, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(8);
  RunningStat s;
  for (int i = 0; i < 50000; ++i) {
    s.Add(rng.NextExponential(10.0));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.5);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(9);
  Rng child = a.Fork();
  // Child stream should not equal parent continuation.
  EXPECT_NE(child.Next(), a.Next());
}

TEST(StatsTest, RunningStatBasics) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.01);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(StatsTest, PercentilesSorted) {
  Percentiles p;
  for (int i = 100; i >= 1; --i) {
    p.Add(i);
  }
  EXPECT_EQ(p.Quantile(0.0), 1.0);
  EXPECT_EQ(p.Quantile(1.0), 100.0);
  EXPECT_NEAR(p.Median(), 50.0, 1.0);
  EXPECT_NEAR(p.P99(), 99.0, 1.0);
}

TEST(StatsTest, EmptyPercentilesIsZero) {
  Percentiles p;
  EXPECT_EQ(p.Median(), 0.0);
  // Every quantile of the empty set is defined as 0, including the
  // extremes and out-of-range requests.
  EXPECT_EQ(p.Quantile(0.0), 0.0);
  EXPECT_EQ(p.Quantile(1.0), 0.0);
  EXPECT_EQ(p.Quantile(-0.5), 0.0);
  EXPECT_EQ(p.Quantile(2.0), 0.0);
  EXPECT_EQ(p.count(), 0u);
}

TEST(StatsTest, QuantileClampsOutOfRangeQ) {
  Percentiles p;
  p.Add(1.0);
  p.Add(2.0);
  p.Add(3.0);
  EXPECT_EQ(p.Quantile(-1.0), 1.0);
  EXPECT_EQ(p.Quantile(7.0), 3.0);
}

TEST(StatsTest, AddAfterQuantileResorts) {
  // Regression: Quantile memoizes the sort; a later Add must invalidate
  // the memo or quantiles silently go stale.
  Percentiles p;
  p.Add(3.0);
  p.Add(1.0);
  p.Add(2.0);
  EXPECT_EQ(p.Quantile(1.0), 3.0);  // forces the sort
  p.Add(100.0);
  p.Add(0.5);
  EXPECT_EQ(p.Quantile(1.0), 100.0);
  EXPECT_EQ(p.Quantile(0.0), 0.5);
}

TEST(StatsTest, HistogramBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Add(0.5);
  h.Add(5.0);
  h.Add(50.0);
  h.Add(500.0);
  EXPECT_EQ(h.total(), 4u);
  std::string rendered = h.Render();
  EXPECT_NE(rendered.find("inf"), std::string::npos);
}

TEST(ResultTest, ValueAndError) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad(Error(ErrorCode::kStale, "token too old"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kStale);
  EXPECT_EQ(bad.error().ToString(), "STALE: token too old");
}

TEST(ResultTest, StatusOkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status err = Error(ErrorCode::kBadSignature, "pledge");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code(), ErrorCode::kBadSignature);
}

}  // namespace
}  // namespace sdr
