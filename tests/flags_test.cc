#include <gtest/gtest.h>

#include "src/util/flags.h"

namespace sdr {
namespace {

Flags MakeFlags() {
  Flags flags;
  flags.Define("seconds", "60", "run time")
      .Define("rate", "1.5", "request rate")
      .Define("name", "default", "a string")
      .Define("verbose", "false", "a boolean");
  return flags;
}

TEST(FlagsTest, DefaultsApply) {
  Flags flags = MakeFlags();
  char prog[] = "prog";
  char* argv[] = {prog};
  ASSERT_TRUE(flags.Parse(1, argv));
  EXPECT_EQ(flags.GetInt("seconds"), 60);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 1.5);
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_FALSE(flags.GetBool("verbose"));
}

TEST(FlagsTest, EqualsAndSpaceSyntax) {
  Flags flags = MakeFlags();
  char prog[] = "prog";
  char a1[] = "--seconds=120";
  char a2[] = "--name";
  char a3[] = "custom";
  char* argv[] = {prog, a1, a2, a3};
  ASSERT_TRUE(flags.Parse(4, argv));
  EXPECT_EQ(flags.GetInt("seconds"), 120);
  EXPECT_EQ(flags.GetString("name"), "custom");
}

TEST(FlagsTest, BareBooleanFlag) {
  Flags flags = MakeFlags();
  char prog[] = "prog";
  char a1[] = "--verbose";
  char* argv[] = {prog, a1};
  ASSERT_TRUE(flags.Parse(2, argv));
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  Flags flags = MakeFlags();
  char prog[] = "prog";
  char a1[] = "--bogus=1";
  char* argv[] = {prog, a1};
  EXPECT_FALSE(flags.Parse(2, argv));
}

TEST(FlagsTest, MissingValueRejected) {
  Flags flags = MakeFlags();
  char prog[] = "prog";
  char a1[] = "--name";
  char* argv[] = {prog, a1};
  EXPECT_FALSE(flags.Parse(2, argv));
}

TEST(FlagsTest, HelpReturnsFalse) {
  Flags flags = MakeFlags();
  char prog[] = "prog";
  char a1[] = "--help";
  char* argv[] = {prog, a1};
  EXPECT_FALSE(flags.Parse(2, argv));
}

TEST(FlagsTest, NonDefaultListsOnlyChangedFlags) {
  Flags flags = MakeFlags();
  char prog[] = "prog";
  char a1[] = "--rate=2.5";
  char a2[] = "--seconds=60";  // explicitly set, but equal to the default
  char a3[] = "--verbose";
  char* argv[] = {prog, a1, a2, a3};
  ASSERT_TRUE(flags.Parse(4, argv));
  auto changed = flags.NonDefault();
  ASSERT_EQ(changed.size(), 2u);
  // Definition order, not command-line order.
  EXPECT_EQ(changed[0].first, "rate");
  EXPECT_EQ(changed[0].second, "2.5");
  EXPECT_EQ(changed[1].first, "verbose");
  EXPECT_EQ(changed[1].second, "true");
}

TEST(FlagsTest, NonDefaultEmptyWhenNothingSet) {
  Flags flags = MakeFlags();
  char prog[] = "prog";
  char* argv[] = {prog};
  ASSERT_TRUE(flags.Parse(1, argv));
  EXPECT_TRUE(flags.NonDefault().empty());
}

TEST(FlagsTest, NonFlagArgumentRejected) {
  Flags flags = MakeFlags();
  char prog[] = "prog";
  char a1[] = "positional";
  char* argv[] = {prog, a1};
  EXPECT_FALSE(flags.Parse(2, argv));
}

}  // namespace
}  // namespace sdr
