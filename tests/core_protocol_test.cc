// End-to-end protocol tests on full simulated clusters: the read/write
// protocols, freshness, probabilistic checking, auditing, corrective
// action, greedy-client policing, non-frameability, and master crash
// recovery.
#include <gtest/gtest.h>

#include "src/core/cluster.h"

namespace sdr {
namespace {

ClusterConfig SmallConfig(uint64_t seed) {
  ClusterConfig config;
  config.seed = seed;
  config.num_masters = 2;
  config.slaves_per_master = 2;
  config.num_clients = 4;
  config.corpus.n_items = 50;
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.client_think_time = 200 * kMillisecond;
  return config;
}

TEST(ClusterTest, HonestClusterServesReadsCorrectly) {
  Cluster cluster(SmallConfig(1));
  cluster.RunFor(30 * kSecond);

  auto totals = cluster.ComputeTotals();
  EXPECT_GT(totals.reads_accepted, 100u);
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
  EXPECT_GT(cluster.accepted_checked(), 0u);
  EXPECT_EQ(totals.slaves_excluded, 0u);
  EXPECT_EQ(totals.double_check_mismatches, 0u);
  // Pledges flow to the auditor and audits find nothing.
  EXPECT_GT(cluster.auditor().metrics().pledges_received, 0u);
  EXPECT_EQ(cluster.auditor().metrics().mismatches_found, 0u);
}

TEST(ClusterTest, AllClientsCompleteSetupAndGetDistinctSlaves) {
  ClusterConfig config = SmallConfig(2);
  config.client_mode = Client::LoadMode::kManual;
  Cluster cluster(config);
  cluster.RunFor(5 * kSecond);
  for (int c = 0; c < cluster.num_clients(); ++c) {
    EXPECT_TRUE(cluster.client(c).ready()) << c;
    EXPECT_NE(cluster.client(c).assigned_slave(), kInvalidNode);
  }
}

TEST(ClusterTest, WriteCommitsAndPropagatesWithinMaxLatency) {
  ClusterConfig config = SmallConfig(3);
  config.client_mode = Client::LoadMode::kManual;
  Cluster cluster(config);
  cluster.RunFor(2 * kSecond);  // setup + first keep-alives

  bool committed = false;
  uint64_t committed_version = 0;
  cluster.client(0).IssueWrite(
      {WriteOp::Put("price/00001", "4242")},
      [&](bool ok, uint64_t version) {
        committed = ok;
        committed_version = version;
      });
  cluster.RunFor(2 * kSecond);
  ASSERT_TRUE(committed);
  EXPECT_EQ(committed_version, 1u);
  EXPECT_EQ(cluster.master(0).version(), 1u);
  EXPECT_EQ(cluster.master(1).version(), 1u);

  // After max_latency, every slave must have applied the write (honest,
  // well-connected slaves) and fresh reads must observe it.
  cluster.RunFor(cluster.config().params.max_latency);
  for (int s = 0; s < cluster.num_slaves(); ++s) {
    EXPECT_EQ(cluster.slave(s).applied_version(), 1u) << s;
  }

  bool read_done = false;
  cluster.client(1).IssueRead(Query::Get("price/00001"),
                              [&](bool accepted, const QueryResult& result) {
                                read_done = true;
                                ASSERT_TRUE(accepted);
                                ASSERT_EQ(result.rows.size(), 1u);
                                EXPECT_EQ(result.rows[0].second, "4242");
                              });
  cluster.RunFor(5 * kSecond);
  EXPECT_TRUE(read_done);
}

TEST(ClusterTest, WritesAreSpacedAtLeastMaxLatencyApart) {
  ClusterConfig config = SmallConfig(4);
  config.client_mode = Client::LoadMode::kManual;
  config.params.max_latency = 1 * kSecond;
  Cluster cluster(config);
  cluster.RunFor(2 * kSecond);

  std::vector<SimTime> commit_times;
  for (int i = 0; i < 4; ++i) {
    cluster.client(0).IssueWrite(
        {WriteOp::Put("k" + std::to_string(i), "v")},
        [&, i](bool ok, uint64_t) {
          ASSERT_TRUE(ok) << i;
          commit_times.push_back(cluster.sim().Now());
        });
  }
  cluster.RunFor(20 * kSecond);
  ASSERT_EQ(commit_times.size(), 4u);
  // Reply times are commit + one network hop; spacing must still be at
  // least max_latency minus jitter on the reply path.
  for (size_t i = 1; i < commit_times.size(); ++i) {
    EXPECT_GE(commit_times[i] - commit_times[i - 1],
              config.params.max_latency - 20 * kMillisecond)
        << i;
  }
}

TEST(ClusterTest, LyingSlaveCaughtRedHandedByDoubleCheck) {
  ClusterConfig config = SmallConfig(5);
  config.num_clients = 2;
  config.params.double_check_probability = 1.0;  // always check
  // One lying slave per master (indices 0..1 belong to master 0, 2..3 to
  // master 1); the least-loaded assignment hands the liar out first.
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0 || index == 2) {
      b.lie_probability = 1.0;
    }
    return b;
  };
  Cluster cluster(config);
  cluster.RunFor(30 * kSecond);

  auto totals = cluster.ComputeTotals();
  EXPECT_GT(totals.lies_told, 0u);
  EXPECT_GT(totals.double_check_mismatches, 0u);
  EXPECT_GE(totals.slaves_excluded, 1u);
  // The pledge is irrefutable: with p=1 nothing wrong is ever accepted.
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
  // Clients of the excluded slave were moved to a new slave.
  uint64_t reassigned = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    reassigned += cluster.client(c).metrics().reassignments;
  }
  EXPECT_GT(reassigned, 0u);
  // Service recovered after exclusion.
  EXPECT_GT(totals.reads_accepted, 50u);
}

TEST(ClusterTest, LyingSlaveEventuallyCaughtByAuditor) {
  ClusterConfig config = SmallConfig(6);
  config.num_clients = 2;
  config.params.double_check_probability = 0.0;  // audit is the only net
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.lie_probability = 0.3;
    }
    return b;
  };
  Cluster cluster(config);
  cluster.RunFor(60 * kSecond);

  auto totals = cluster.ComputeTotals();
  EXPECT_GT(totals.lies_told, 0u);
  // Without double-checking, some wrong answers were accepted (the paper's
  // optimistic trade-off)...
  EXPECT_GT(cluster.accepted_wrong(), 0u);
  // ...but the background audit caught the slave and had it excluded.
  EXPECT_GT(cluster.auditor().metrics().mismatches_found, 0u);
  EXPECT_GT(cluster.auditor().metrics().accusations_sent, 0u);
  EXPECT_GE(totals.slaves_excluded, 1u);
  // After exclusion, no further lies are accepted; wrong accepts stop
  // growing. (Run longer and compare.)
  uint64_t wrong_at_exclusion = cluster.accepted_wrong();
  cluster.RunFor(30 * kSecond);
  EXPECT_EQ(cluster.accepted_wrong(), wrong_at_exclusion);
}

TEST(ClusterTest, InconsistentLieRejectedAtClientHashCheck) {
  ClusterConfig config = SmallConfig(7);
  config.num_clients = 1;
  config.params.double_check_probability = 0.0;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.inconsistent_lie_probability = 1.0;
    }
    return b;
  };
  Cluster cluster(config);
  cluster.RunFor(20 * kSecond);
  const ClientMetrics& m = cluster.client(0).metrics();
  EXPECT_GT(m.reads_rejected_hash, 0u);
  // Clumsy lies never make it through.
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
}

TEST(ClusterTest, StaleSlaveDeclinesAndStaleTokenRejected) {
  ClusterConfig config = SmallConfig(8);
  config.num_clients = 2;
  config.client_write_fraction = 0.0;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0) {
      b.ignore_updates = true;  // honest-but-stuck replica
      b.serve_despite_stale = false;
    }
    if (index == 1) {
      b.ignore_updates = true;
      b.serve_despite_stale = true;  // malicious: serves with stale token
    }
    return b;
  };
  // Drive writes from one client so versions move past the stuck slaves.
  config.client_mode = Client::LoadMode::kClosedLoop;
  config.tweak_client = [](int index, Client::Options& opts) {
    if (index == 0) {
      opts.write_fraction = 0.5;
    }
  };
  Cluster cluster(config);
  cluster.RunFor(60 * kSecond);

  uint64_t declined = 0, stale_rejected = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    declined += cluster.client(c).metrics().reads_failed_declined;
    stale_rejected += cluster.client(c).metrics().reads_rejected_stale;
  }
  EXPECT_GT(declined + stale_rejected, 0u);
  // Stale content was never accepted as fresh.
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
}

TEST(ClusterTest, GreedyClientGetsThrottledHonestClientsUnaffected) {
  ClusterConfig config = SmallConfig(9);
  config.num_clients = 3;
  config.params.double_check_probability = 0.02;
  config.params.greedy_policing_enabled = true;
  config.params.greedy_refill_per_second = 0.5;
  config.params.greedy_burst = 5.0;
  config.client_think_time = 50 * kMillisecond;
  config.tweak_client = [](int index, Client::Options& opts) {
    if (index == 0) {
      opts.greedy = true;  // double-checks every single read
    }
  };
  Cluster cluster(config);
  cluster.RunFor(60 * kSecond);

  const ClientMetrics& greedy = cluster.client(0).metrics();
  EXPECT_GT(greedy.double_checks_unserved, 0u);
  // Honest clients' rare double-checks almost always get served.
  for (int c = 1; c < 3; ++c) {
    const ClientMetrics& honest = cluster.client(c).metrics();
    EXPECT_LE(honest.double_checks_unserved, honest.double_checks_sent / 2)
        << c;
  }
  uint64_t throttled = 0;
  for (int m = 0; m < cluster.num_masters(); ++m) {
    throttled += cluster.master(m).metrics().double_checks_throttled;
  }
  EXPECT_GT(throttled, 0u);
}

TEST(ClusterTest, ForgedAccusationCannotFrameInnocentSlave) {
  ClusterConfig config = SmallConfig(10);
  config.client_mode = Client::LoadMode::kManual;
  Cluster cluster(config);
  cluster.RunFor(2 * kSecond);

  // A malicious client fabricates an "incriminating" pledge with a wrong
  // hash but cannot produce the slave's signature.
  NodeId victim = cluster.client(0).assigned_slave();
  Pledge forged;
  forged.query = Query::Get("item/00001");
  forged.result_sha1 = Bytes(20, 0xee);
  forged.token.content_version = 0;
  forged.token.master = cluster.client(0).master();
  forged.slave = victim;
  forged.signature = Bytes(64, 0xab);
  Accusation accusation;
  accusation.pledge = forged;
  cluster.net().Send(cluster.client(0).id(), cluster.client(0).master(),
                     WithType(MsgType::kAccusation, accusation.Encode()));
  cluster.RunFor(5 * kSecond);

  uint64_t unfounded = 0, excluded = 0;
  for (int m = 0; m < cluster.num_masters(); ++m) {
    unfounded += cluster.master(m).metrics().accusations_unfounded;
    excluded += cluster.master(m).metrics().slaves_excluded;
  }
  EXPECT_EQ(unfounded, 1u);
  EXPECT_EQ(excluded, 0u);
}

TEST(ClusterTest, NonSequencerMasterCrashClientsReSetup) {
  ClusterConfig config = SmallConfig(11);
  config.num_clients = 4;
  Cluster cluster(config);
  cluster.RunFor(10 * kSecond);

  // Crash the second master (not the broadcast sequencer).
  NodeId dead = cluster.master(1).id();
  cluster.net().SetNodeUp(dead, false);
  cluster.RunFor(30 * kSecond);

  // The surviving master adopted the dead master's slaves.
  EXPECT_GT(cluster.master(0).metrics().slave_sets_adopted, 0u);
  EXPECT_TRUE(cluster.master(0).dead_masters().count(dead) > 0);

  // Clients that had the dead master completed a fresh setup and resumed.
  auto totals_before = cluster.ComputeTotals();
  cluster.RunFor(20 * kSecond);
  auto totals_after = cluster.ComputeTotals();
  EXPECT_GT(totals_after.reads_accepted, totals_before.reads_accepted);
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
  for (int c = 0; c < cluster.num_clients(); ++c) {
    EXPECT_NE(cluster.client(c).master(), dead) << c;
  }
}

TEST(ClusterTest, SequencerMasterCrashWritesStillCommit) {
  ClusterConfig config = SmallConfig(12);
  config.num_masters = 3;
  config.client_mode = Client::LoadMode::kManual;
  Cluster cluster(config);
  cluster.RunFor(5 * kSecond);

  // Group order is master0, master1, master2, auditor; epoch 0 sequencer is
  // master0. Crash it.
  cluster.net().SetNodeUp(cluster.master(0).id(), false);
  cluster.RunFor(10 * kSecond);  // takeover window

  // A client attached to a surviving master can still write.
  int writer = -1;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    if (cluster.client(c).master() != cluster.master(0).id()) {
      writer = c;
      break;
    }
  }
  ASSERT_GE(writer, 0);
  bool committed = false;
  cluster.client(writer).IssueWrite({WriteOp::Put("post-crash", "1")},
                                    [&](bool ok, uint64_t) { committed = ok; });
  cluster.RunFor(20 * kSecond);
  EXPECT_TRUE(committed);
  EXPECT_GE(cluster.master(1).version(), 1u);
  EXPECT_GE(cluster.master(2).version(), 1u);
}

TEST(ClusterTest, AuditorFinalizesVersionsAndPrunes) {
  ClusterConfig config = SmallConfig(13);
  config.client_write_fraction = 0.2;
  config.params.max_latency = 500 * kMillisecond;
  Cluster cluster(config);
  cluster.RunFor(60 * kSecond);

  const AuditorMetrics& am = cluster.auditor().metrics();
  EXPECT_GT(am.pledges_received, 0u);
  EXPECT_GT(am.pledges_audited, 0u);
  EXPECT_GT(am.versions_finalized, 0u);
  EXPECT_GT(cluster.auditor().audited_version(), 0u);
  // The auditor keeps up with this light load: small lag at the end.
  EXPECT_LE(cluster.auditor().version_lag(), 3u);
  EXPECT_EQ(am.mismatches_found, 0u);
}

TEST(ClusterTest, AuditSamplingAuditsOnlyAFraction) {
  ClusterConfig config = SmallConfig(14);
  config.params.audit_sample_fraction = 0.25;
  Cluster cluster(config);
  cluster.RunFor(30 * kSecond);
  const AuditorMetrics& am = cluster.auditor().metrics();
  ASSERT_GT(am.pledges_received, 100u);
  EXPECT_GT(am.pledges_skipped_sampling, 0u);
  double audited_fraction =
      static_cast<double>(am.pledges_received - am.pledges_skipped_sampling) /
      static_cast<double>(am.pledges_received);
  EXPECT_NEAR(audited_fraction, 0.25, 0.1);
}

TEST(ClusterTest, DelayedDiscoveryNotifiesVictimForRollback) {
  ClusterConfig config = SmallConfig(21);
  config.num_clients = 2;
  config.params.double_check_probability = 0.0;
  // One liar per master so whichever master the clients pick, their first
  // assigned slave lies.
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0 || index == 2) {
      b.lie_probability = 0.5;
    }
    return b;
  };
  Cluster cluster(config);
  uint64_t rollbacks = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    cluster.client(c).on_bad_read = [&](const Query&, uint64_t) {
      ++rollbacks;
    };
  }
  cluster.RunFor(60 * kSecond);

  // At least one wrong answer was accepted and the auditor reported each
  // back to the victim client for rollback.
  ASSERT_GT(cluster.accepted_wrong(), 0u);
  uint64_t notices = 0;
  for (int c = 0; c < cluster.num_clients(); ++c) {
    notices += cluster.client(c).metrics().bad_read_notices;
  }
  EXPECT_EQ(notices, cluster.auditor().metrics().bad_read_notices_sent);
  EXPECT_GT(notices, 0u);
  EXPECT_EQ(rollbacks, notices);
  // Every accepted-wrong read has a matching notice (the audit covers all
  // forwarded pledges).
  EXPECT_GE(notices, cluster.accepted_wrong());
}

TEST(ClusterTest, MultipleAuditorsSplitThePledgeStream) {
  ClusterConfig config = SmallConfig(22);
  config.num_auditors = 2;
  config.slaves_per_master = 2;  // 4 slaves -> both auditors get traffic
  config.num_clients = 4;
  Cluster cluster(config);
  cluster.RunFor(30 * kSecond);

  ASSERT_EQ(cluster.num_auditors(), 2);
  uint64_t a0 = cluster.auditor(0).metrics().pledges_received;
  uint64_t a1 = cluster.auditor(1).metrics().pledges_received;
  EXPECT_GT(a0, 0u);
  EXPECT_GT(a1, 0u);
  auto totals = cluster.ComputeTotals();
  EXPECT_EQ(a0 + a1, totals.pledges_forwarded);
  EXPECT_EQ(cluster.accepted_wrong(), 0u);
}

TEST(ClusterTest, MultipleAuditorsStillCatchLiars) {
  ClusterConfig config = SmallConfig(23);
  config.num_auditors = 2;
  config.num_clients = 4;
  config.params.double_check_probability = 0.0;
  config.slave_behavior = [](int index) {
    Slave::Behavior b;
    if (index == 0 || index == 3) {
      b.lie_probability = 0.5;
    }
    return b;
  };
  Cluster cluster(config);
  cluster.RunFor(60 * kSecond);
  auto totals = cluster.ComputeTotals();
  EXPECT_GT(totals.lies_told, 0u);
  EXPECT_GE(totals.slaves_excluded, 1u);
  EXPECT_GT(totals.auditor_mismatches, 0u);
}

TEST(ClusterTest, DeterministicAcrossIdenticalRuns) {
  auto run = [](uint64_t seed) {
    ClusterConfig config = SmallConfig(seed);
    Cluster cluster(config);
    cluster.RunFor(20 * kSecond);
    auto t = cluster.ComputeTotals();
    return std::tuple(t.reads_issued, t.reads_accepted, t.double_checks_sent,
                      t.pledges_forwarded);
  };
  EXPECT_EQ(run(99), run(99));
}

TEST(ClusterTest, ClientChosenFreshnessRelaxation) {
  // A client with a relaxed freshness bound tolerates results an aggressive
  // client rejects (Section 3.2 variant).
  ClusterConfig config = SmallConfig(15);
  config.num_clients = 2;
  config.params.keepalive_period = 900 * kMillisecond;
  config.params.max_latency = 1 * kSecond;
  config.default_link = LinkModel{300 * kMillisecond, 150 * kMillisecond, 0.0};
  config.tweak_client = [](int index, Client::Options& opts) {
    if (index == 0) {
      opts.max_latency_override = 400 * kMillisecond;  // stricter than ML
    } else {
      opts.max_latency_override = 10 * kSecond;  // very relaxed
    }
  };
  Cluster cluster(config);
  cluster.RunFor(60 * kSecond);

  const ClientMetrics& strict = cluster.client(0).metrics();
  const ClientMetrics& relaxed = cluster.client(1).metrics();
  // On a slow link with sparse keep-alives, the strict client rejects some
  // (or even all) answers as stale; the relaxed client accepts smoothly.
  EXPECT_GT(strict.reads_rejected_stale, 0u);
  EXPECT_EQ(relaxed.reads_rejected_stale, 0u);
  EXPECT_GT(relaxed.reads_accepted, strict.reads_accepted);
}

}  // namespace
}  // namespace sdr
